//! A small metrics registry — counters, gauges and log₂ histograms — with
//! a JSON-lines snapshot exporter.
//!
//! The registry is how a run's quantitative shape (per-filter hit counts,
//! cascade depth, control-plane bytes, classify-to-action latency) gets
//! out of the engines and into something diffable: `to_jsonl()` emits one
//! sorted JSON object per metric, so two runs can be compared with plain
//! `diff`.

use std::collections::BTreeMap;
use std::fmt;

/// A fixed-size log₂-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds values whose bit length is `i` (bucket 0 holds the
/// value 0), so the whole `u64` range fits in 65 buckets with no
/// allocation per observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the observations, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at percentile `p` (in `[0, 100]`), or 0 if empty.
    ///
    /// Resolution is the histogram's: the rank-`⌈p/100·count⌉`
    /// observation is located in its log₂ bucket and the **bucket upper
    /// bound** is returned (bucket 0 → 0, bucket *i* → `2^i − 1`),
    /// clamped to the largest observation actually seen. The estimate is
    /// therefore conservative — never below the true percentile, and at
    /// most one power of two above it — which is the right bias for
    /// regression gates ("p99 got worse" is never reported as better by
    /// bucketing).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // ceil(p/100 * count), computed in f64 (count and rank both fit
        // comfortably below 2^53 for any realistic run), at least rank 1.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one: buckets, count and sum add;
    /// min/max take the tighter envelope. Merging an empty histogram is a
    /// no-op; merging *into* an empty one copies `other`.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs, where
    /// `bucket_floor` is the smallest value the bucket can hold.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time signed value.
    Gauge(i64),
    /// A distribution of `u64` observations (boxed: a [`Histogram`] is
    /// ~0.5 KiB of buckets, far larger than the scalar variants).
    Histogram(Box<Histogram>),
}

/// A named collection of metrics, keyed by dotted path
/// (e.g. `node1.filter_hits.udp_data`).
///
/// Iteration order is the key's lexicographic order, which makes the
/// JSONL snapshot stable and diff-friendly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at 0 first.
    /// Panics if `name` is registered as a different metric kind.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name`, creating it if needed.
    /// Panics if `name` is registered as a different metric kind.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Gauge(0))
        {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Records one observation into the histogram `name`, creating it if
    /// needed. Panics if `name` is registered as a different metric kind.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Stores an already-populated histogram under `name`, replacing any
    /// previous entry.
    pub fn insert_histogram(&mut self, name: &str, histogram: Histogram) {
        self.entries
            .insert(name.to_string(), Metric::Histogram(Box::new(histogram)));
    }

    /// The counter's value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge's value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.entries.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.entries.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot as JSON lines: one object per metric, keys sorted, so two
    /// snapshots can be compared with `diff`.
    ///
    /// Shapes:
    /// ```json
    /// {"name":"node1.classified","type":"counter","value":7}
    /// {"name":"node1.drops","type":"gauge","value":-1}
    /// {"name":"node1.cascade_depth","type":"histogram","count":3,"sum":9,"min":1,"max":5,"mean":3.0,"buckets":[[1,2],[4,1]]}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.entries {
            out.push_str("{\"name\":");
            json_string(&mut out, name);
            match metric {
                Metric::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean(),
                    ));
                    for (i, (floor, n)) in h.nonzero_buckets().iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{floor},{n}]"));
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Snapshot in the Prometheus text exposition format (version 0.0.4):
    /// one `# TYPE` header per metric, histograms expanded into
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
    /// Dotted metric names become underscore-separated (Prometheus names
    /// may not contain `.`); keys keep the registry's sorted order.
    ///
    /// ```text
    /// # TYPE node1_classified counter
    /// node1_classified 7
    /// # TYPE node1_cascade_depth histogram
    /// node1_cascade_depth_bucket{le="1"} 2
    /// node1_cascade_depth_bucket{le="7"} 3
    /// node1_cascade_depth_bucket{le="+Inf"} 3
    /// node1_cascade_depth_sum 9
    /// node1_cascade_depth_count 3
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.entries {
            let name = prometheus_name(name);
            match metric {
                Metric::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, n) in h.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cumulative += n;
                        // Log₂ bucket `i` holds values of bit length `i`,
                        // so its inclusive upper bound is `2^i - 1`. The
                        // last bucket's bound (u64::MAX) is left to the
                        // mandatory +Inf series.
                        if i < 64 {
                            let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                        h.count(),
                        h.sum(),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Folds a self-profiler trace into the registry: every span's *self*
    /// time lands in a `trace.self_ns.<category>` histogram and bumps a
    /// `trace.spans.<category>` counter, so phase attribution travels
    /// with the run's other metrics (JSONL and Prometheus alike).
    pub fn record_trace(&mut self, trace: &vw_trace::Trace) {
        let selfs = trace.self_times();
        for (r, &s) in trace.records.iter().zip(&selfs) {
            self.observe(&format!("trace.self_ns.{}", r.category.as_str()), s);
            self.add_counter(&format!("trace.spans.{}", r.category.as_str()), 1);
        }
        if trace.dropped > 0 {
            self.add_counter("trace.dropped", trace.dropped);
        }
    }
}

/// Maps a registry key to a valid Prometheus metric name: `[a-zA-Z0-9_:]`
/// pass through, everything else (dots included) becomes `_`, and a
/// leading digit gets a `_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { c } else { '_' });
    }
    out
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_jsonl())
    }
}

/// Appends `s` to `out` as a JSON string literal with minimal escaping.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 8, 1023] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1036);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1023);
        let buckets = h.nonzero_buckets();
        // 0 → bucket floor 0; 1,1 → floor 1; 3 → floor 2; 8 → floor 8; 1023 → floor 512.
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 1), (8, 1), (512, 1)]);
    }

    #[test]
    fn histogram_extremes() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.nonzero_buckets(), vec![(1u64 << 63, 1)]);
        let empty = Histogram::new();
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn percentiles_use_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Rank 50 → value 50 → bucket of bit length 6 → upper bound 63.
        assert_eq!(h.percentile(50.0), 63);
        // Rank 90 → value 90 → bucket upper bound 127, clamped to max 100.
        assert_eq!(h.percentile(90.0), 100);
        assert_eq!(h.percentile(99.0), 100);
        // p=0 still resolves rank 1 (value 1 → upper bound 1).
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
    }

    #[test]
    fn percentile_edge_buckets() {
        let mut h = Histogram::new();
        h.observe(0);
        assert_eq!(h.percentile(50.0), 0, "bucket 0 holds exactly the value 0");
        h.observe(u64::MAX);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.percentile(100.0), u64::MAX);
        // A single mid-range observation: upper bound clamps to it.
        let mut one = Histogram::new();
        one.observe(1000);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(one.percentile(p), 1000);
        }
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let empty = Histogram::new();
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(empty.percentile(p), 0);
        }
    }

    #[test]
    fn merge_adds_buckets_and_tracks_envelope() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.observe(v);
        }
        for v in [100u64, 200] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 306);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
        assert_eq!(a.percentile(100.0), 200);
        // Merge must agree with observing everything into one histogram.
        let mut c = Histogram::new();
        for v in [1u64, 2, 3, 100, 200] {
            c.observe(v);
        }
        assert_eq!(a, c);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.observe(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty copies the other side");
        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert!(both.is_empty());
        assert_eq!(both.min(), 0);
    }

    #[test]
    fn registry_kinds_and_lookup() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("a.hits", 2);
        reg.add_counter("a.hits", 3);
        reg.set_gauge("a.depth", -4);
        reg.observe("a.lat", 100);
        assert_eq!(reg.counter("a.hits"), Some(5));
        assert_eq!(reg.gauge("a.depth"), Some(-4));
        assert_eq!(reg.histogram("a.lat").unwrap().count(), 1);
        assert_eq!(reg.counter("a.depth"), None);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn jsonl_is_sorted_and_parseable_shape() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("z.last", 1);
        reg.add_counter("a.first", 7);
        reg.observe("m.mid", 3);
        let out = reg.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"name\":\"a.first\""));
        assert!(lines[1].starts_with("{\"name\":\"m.mid\""));
        assert!(lines[2].starts_with("{\"name\":\"z.last\""));
        assert_eq!(
            lines[0],
            "{\"name\":\"a.first\",\"type\":\"counter\",\"value\":7}"
        );
        assert!(lines[1].contains("\"type\":\"histogram\""));
        assert!(lines[1].contains("\"buckets\":[[2,1]]"));
        for line in &lines {
            // Crude structural sanity: balanced braces/brackets, no raw newlines.
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn jsonl_escapes_names() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("weird\"name\\with\nstuff", 1);
        let out = reg.to_jsonl();
        assert!(out.contains("weird\\\"name\\\\with\\nstuff"));
    }

    #[test]
    fn prometheus_golden_output() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("node1.classified", 7);
        reg.set_gauge("node1.queue.depth", -2);
        for v in [1u64, 1, 5] {
            reg.observe("node1.cascade_depth", v);
        }
        let golden = "\
# TYPE node1_cascade_depth histogram
node1_cascade_depth_bucket{le=\"1\"} 2
node1_cascade_depth_bucket{le=\"7\"} 3
node1_cascade_depth_bucket{le=\"+Inf\"} 3
node1_cascade_depth_sum 7
node1_cascade_depth_count 3
# TYPE node1_classified counter
node1_classified 7
# TYPE node1_queue_depth gauge
node1_queue_depth -2
";
        assert_eq!(reg.to_prometheus(), golden);
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let mut reg = MetricsRegistry::new();
        reg.observe("lat", 0);
        reg.observe("lat", u64::MAX);
        let out = reg.to_prometheus();
        assert!(out.contains("lat_bucket{le=\"0\"} 1\n"));
        // The u64::MAX observation lands in bucket 64, surfaced only via +Inf.
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(out.contains(&format!("lat_sum {}\n", u64::MAX as u128)));
        assert!(out.contains("lat_count 2\n"));
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(prometheus_name("a.b-c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("0start"), "_0start");
        assert_eq!(prometheus_name("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn record_trace_folds_self_times_into_histograms() {
        use vw_trace::{Category, SpanRecord, Trace};
        let trace = Trace {
            records: vec![
                SpanRecord {
                    name: "run",
                    category: Category::Run,
                    start_ns: 0,
                    dur_ns: 100,
                    depth: 0,
                    seq: 0,
                },
                SpanRecord {
                    name: "classify_in",
                    category: Category::Classify,
                    start_ns: 10,
                    dur_ns: 40,
                    depth: 1,
                    seq: 1,
                },
            ],
            dropped: 2,
            tid: 1,
        };
        let mut reg = MetricsRegistry::new();
        reg.record_trace(&trace);
        // run's self time is 100 - 40 = 60; classify keeps its full 40.
        assert_eq!(reg.histogram("trace.self_ns.run").unwrap().sum(), 60);
        assert_eq!(reg.histogram("trace.self_ns.classify").unwrap().sum(), 40);
        assert_eq!(reg.counter("trace.spans.classify"), Some(1));
        assert_eq!(reg.counter("trace.dropped"), Some(2));
    }

    #[test]
    fn snapshots_diff_cleanly() {
        let mut a = MetricsRegistry::new();
        a.add_counter("x", 1);
        let mut b = a.clone();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        b.add_counter("x", 1);
        assert_ne!(a.to_jsonl(), b.to_jsonl());
    }
}

//! Classic libpcap export for simulator traces.
//!
//! Writes the original (non-pcapng) capture format with the
//! **nanosecond-resolution** magic `0xa1b23c4d`, `LINKTYPE_ETHERNET`, so a
//! [`TraceSink`](vw_netsim::TraceSink) — including injected/duplicated
//! frames and `0x88B5` control traffic — opens directly in Wireshark or
//! `tcpdump -r`. Sim time is nanosecond-exact, so the nanosecond variant
//! round-trips timestamps without loss.
//!
//! A minimal [`parse`] reader exists for round-trip tests; it is not a
//! general pcap implementation (it only accepts what [`file_header`]
//! writes).

use vw_netsim::{SimTime, TraceKind, TraceRecord, TraceSink};

/// The pcap `network` value for Ethernet captures.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Magic for nanosecond-resolution classic pcap, written little-endian.
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;

/// Maximum bytes captured per packet (we never truncate; this is the
/// advertised snaplen).
pub const SNAPLEN: u32 = 65_535;

const FILE_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;

/// The 24-byte pcap global header: nanosecond magic, version 2.4,
/// UTC (zone 0), snaplen 65535, `LINKTYPE_ETHERNET`.
pub fn file_header() -> [u8; 24] {
    let mut h = [0u8; FILE_HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC_NANOS.to_le_bytes());
    h[4..6].copy_from_slice(&2u16.to_le_bytes()); // version_major
    h[6..8].copy_from_slice(&4u16.to_le_bytes()); // version_minor
                                                  // thiszone (4) and sigfigs (4) stay zero.
    h[16..20].copy_from_slice(&SNAPLEN.to_le_bytes());
    h[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    h
}

/// Appends one packet record (16-byte header + frame bytes) to `out`.
pub fn append_frame(out: &mut Vec<u8>, time: SimTime, bytes: &[u8]) {
    let nanos = time.as_nanos();
    let ts_sec = (nanos / 1_000_000_000) as u32;
    let ts_nsec = (nanos % 1_000_000_000) as u32;
    let len = bytes.len() as u32;
    out.extend_from_slice(&ts_sec.to_le_bytes());
    out.extend_from_slice(&ts_nsec.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes()); // incl_len: never truncated
    out.extend_from_slice(&len.to_le_bytes()); // orig_len
    out.extend_from_slice(bytes);
}

/// Serializes `(time, frame-bytes)` pairs into a complete pcap capture.
pub fn export_frames<'a>(frames: impl IntoIterator<Item = (SimTime, &'a [u8])>) -> Vec<u8> {
    let mut out = file_header().to_vec();
    for (time, bytes) in frames {
        append_frame(&mut out, time, bytes);
    }
    out
}

/// Exports every frame-carrying record in `records`, regardless of kind.
pub fn export_records<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> Vec<u8> {
    export_frames(
        records
            .into_iter()
            .filter_map(|r| r.frame.as_ref().map(|f| (r.time, f.bytes()))),
    )
}

/// Exports the wire's view of a run: frames handed to the wire by hosts
/// ([`TraceKind::HostSend`]) and frames injected by hooks
/// ([`TraceKind::HookEmit`]) — i.e. original, duplicated and control
/// traffic, without double-counting deliveries.
pub fn export_trace(trace: &TraceSink) -> Vec<u8> {
    export_records(
        trace
            .records()
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::HostSend | TraceKind::HookEmit)),
    )
}

/// One packet read back out of a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp in nanoseconds since the epoch (sim start).
    pub time_ns: u64,
    /// The captured frame bytes.
    pub bytes: Vec<u8>,
}

/// Why a capture failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// The capture is shorter than the 24-byte global header.
    TruncatedHeader,
    /// The magic is not the little-endian nanosecond magic we write.
    BadMagic(u32),
    /// The advertised link type is not Ethernet.
    BadLinkType(u32),
    /// A record header or body extends past the end of the capture.
    TruncatedRecord {
        /// Byte offset of the offending record header.
        offset: usize,
    },
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::TruncatedHeader => write!(f, "capture shorter than the pcap global header"),
            PcapError::BadMagic(m) => write!(f, "unsupported pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported link type {l}"),
            PcapError::TruncatedRecord { offset } => {
                write!(f, "truncated pcap record at offset {offset}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// Parses a capture produced by this module back into packets.
///
/// Strict by design: only little-endian nanosecond-magic Ethernet
/// captures are accepted, which is exactly what [`export_frames`] writes.
pub fn parse(capture: &[u8]) -> Result<Vec<PcapPacket>, PcapError> {
    if capture.len() < FILE_HEADER_LEN {
        return Err(PcapError::TruncatedHeader);
    }
    let magic = u32::from_le_bytes(capture[0..4].try_into().unwrap());
    if magic != MAGIC_NANOS {
        return Err(PcapError::BadMagic(magic));
    }
    let network = u32::from_le_bytes(capture[20..24].try_into().unwrap());
    if network != LINKTYPE_ETHERNET {
        return Err(PcapError::BadLinkType(network));
    }
    let mut packets = Vec::new();
    let mut offset = FILE_HEADER_LEN;
    while offset < capture.len() {
        if capture.len() - offset < RECORD_HEADER_LEN {
            return Err(PcapError::TruncatedRecord { offset });
        }
        let field =
            |i: usize| u32::from_le_bytes(capture[offset + i..offset + i + 4].try_into().unwrap());
        let ts_sec = field(0);
        let ts_nsec = field(4);
        let incl_len = field(8) as usize;
        let body = offset + RECORD_HEADER_LEN;
        if capture.len() - body < incl_len {
            return Err(PcapError::TruncatedRecord { offset });
        }
        packets.push(PcapPacket {
            time_ns: u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_nsec),
            bytes: capture[body..body + incl_len].to_vec(),
        });
        offset = body + incl_len;
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout() {
        let h = file_header();
        assert_eq!(&h[0..4], &[0x4d, 0x3c, 0xb2, 0xa1]); // LE nanosecond magic
        assert_eq!(&h[4..8], &[2, 0, 4, 0]); // version 2.4
        assert_eq!(&h[8..16], &[0; 8]); // zone + sigfigs
        assert_eq!(&h[16..20], &[0xff, 0xff, 0, 0]); // snaplen 65535
        assert_eq!(&h[20..24], &[1, 0, 0, 0]); // LINKTYPE_ETHERNET
    }

    #[test]
    fn round_trip_exact_nanos() {
        let frames: Vec<(SimTime, Vec<u8>)> = vec![
            (SimTime::from_nanos(0), vec![0xaa; 60]),
            (SimTime::from_nanos(1_500_000_123), vec![1, 2, 3, 4]),
            (
                SimTime::from_nanos(u64::from(u32::MAX) * 1_000_000_000),
                vec![],
            ),
        ];
        let capture = export_frames(frames.iter().map(|(t, b)| (*t, b.as_slice())));
        let packets = parse(&capture).unwrap();
        assert_eq!(packets.len(), 3);
        for ((t, b), p) in frames.iter().zip(&packets) {
            assert_eq!(p.time_ns, t.as_nanos());
            assert_eq!(&p.bytes, b);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse(&[0; 10]), Err(PcapError::TruncatedHeader));
        let mut h = file_header().to_vec();
        h[0] = 0xd4; // microsecond magic: not ours
        assert!(matches!(parse(&h), Err(PcapError::BadMagic(_))));
        let mut h = file_header().to_vec();
        h[20] = 101;
        assert!(matches!(parse(&h), Err(PcapError::BadLinkType(101))));
        let mut capture = file_header().to_vec();
        capture.extend_from_slice(&[0; 15]); // short record header
        assert!(matches!(
            parse(&capture),
            Err(PcapError::TruncatedRecord { offset: 24 })
        ));
        let mut capture = Vec::new();
        append_frame(&mut capture, SimTime::ZERO, &[0; 100]);
        let mut full = file_header().to_vec();
        full.extend_from_slice(&capture[..50]); // body cut short
        assert!(matches!(
            parse(&full),
            Err(PcapError::TruncatedRecord { .. })
        ));
    }
}

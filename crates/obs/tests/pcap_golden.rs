//! pcap exporter contract tests: golden bytes for the on-disk format, and
//! byte-for-byte round-trip of every frame a [`TraceSink`] captured.

use proptest::prelude::*;
use vw_netsim::{DeviceId, SimTime, TraceKind, TraceSink};
use vw_obs::pcap;
use vw_packet::{EtherType, EthernetBuilder, Frame, MacAddr};

fn frame(src: u32, dst: u32, ethertype: EtherType, payload: &[u8]) -> Frame {
    EthernetBuilder::new()
        .src(MacAddr::from_index(src))
        .dst(MacAddr::from_index(dst))
        .ethertype(ethertype)
        .payload(payload)
        .build()
}

/// The exact bytes of a capture holding one 18-byte frame at t=1.000000002s.
/// Field-by-field golden so any format drift fails loudly.
#[test]
fn golden_header_and_one_record() {
    let f = frame(1, 2, EtherType::VW_CONTROL, &[0xde, 0xad, 0xbe, 0xef]);
    assert_eq!(f.len(), 18);
    let capture = pcap::export_frames([(SimTime::from_nanos(1_000_000_002), f.bytes())]);

    #[rustfmt::skip]
    let mut expected: Vec<u8> = vec![
        // global header
        0x4d, 0x3c, 0xb2, 0xa1, // nanosecond magic, little-endian
        0x02, 0x00,             // version major 2
        0x04, 0x00,             // version minor 4
        0x00, 0x00, 0x00, 0x00, // thiszone
        0x00, 0x00, 0x00, 0x00, // sigfigs
        0xff, 0xff, 0x00, 0x00, // snaplen 65535
        0x01, 0x00, 0x00, 0x00, // LINKTYPE_ETHERNET
        // record header
        0x01, 0x00, 0x00, 0x00, // ts_sec = 1
        0x02, 0x00, 0x00, 0x00, // ts_nsec = 2
        0x12, 0x00, 0x00, 0x00, // incl_len = 18
        0x12, 0x00, 0x00, 0x00, // orig_len = 18
    ];
    expected.extend_from_slice(f.bytes());
    assert_eq!(capture, expected);
    assert_eq!(&capture[..24], &pcap::file_header());
}

#[test]
fn trace_sink_round_trip_byte_for_byte() {
    let mut sink = TraceSink::new();
    let frames = [
        frame(1, 2, EtherType::IPV4, &[0u8; 46]),
        frame(3, 1, EtherType::VW_CONTROL, &[0x11; 7]),
        frame(2, 1, EtherType::RETHER, &[]),
    ];
    for (i, f) in frames.iter().enumerate() {
        sink.record(
            SimTime::from_nanos(i as u64 * 1_000 + 1),
            DeviceId::from_index(i),
            if i == 1 {
                TraceKind::HookEmit
            } else {
                TraceKind::HostSend
            },
            Some(f),
            "",
        );
    }
    // Non-wire records must not appear in the capture.
    sink.record(
        SimTime::from_nanos(9_999),
        DeviceId::from_index(0),
        TraceKind::HostRecv,
        Some(&frames[0]),
        "delivered",
    );
    sink.record(
        SimTime::from_nanos(10_000),
        DeviceId::from_index(0),
        TraceKind::Note,
        None,
        "just a note",
    );

    let capture = pcap::export_trace(&sink);
    let packets = pcap::parse(&capture).expect("own capture parses");
    assert_eq!(packets.len(), 3);
    for (i, (f, p)) in frames.iter().zip(&packets).enumerate() {
        assert_eq!(p.bytes, f.bytes(), "frame {i} must survive byte-for-byte");
        assert_eq!(p.time_ns, i as u64 * 1_000 + 1);
    }

    // export_records keeps every frame-carrying record, including the
    // HostRecv delivery, but still skips the frameless note.
    let all = pcap::parse(&pcap::export_records(sink.records())).unwrap();
    assert_eq!(all.len(), 4);
}

proptest! {
    /// Any frame at any sim time survives export + parse exactly.
    #[test]
    fn round_trip_arbitrary_frames(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        nanos in any::<u64>(),
        src in 0u32..16,
        dst in 0u32..16,
    ) {
        let f = frame(src, dst, EtherType::IPV4, &payload);
        let capture = pcap::export_frames([(SimTime::from_nanos(nanos), f.bytes())]);
        let packets = pcap::parse(&capture).unwrap();
        prop_assert_eq!(packets.len(), 1);
        prop_assert_eq!(&packets[0].bytes, f.bytes());
        // ts_sec is 32-bit in classic pcap; times past 2^32 seconds wrap
        // there, but every realistic sim time round-trips exactly.
        if nanos / 1_000_000_000 <= u64::from(u32::MAX) {
            prop_assert_eq!(packets[0].time_ns, nanos);
        }
    }
}

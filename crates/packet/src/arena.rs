//! Thread-local frame-buffer arena.
//!
//! Every frame traversing the simulator is an owned byte buffer, and the
//! hot path (build → clone at fan-out → drop after delivery) used to hit
//! the global allocator once per step. The arena recycles those buffers:
//! [`Frame`](crate::Frame) returns its buffer here on drop, and the
//! builders (and `Frame::clone`) take buffers from here instead of
//! allocating fresh ones.
//!
//! Buffers are segregated into power-of-two size classes and handed out
//! with their class's full capacity, so a recycled buffer never needs a
//! realloc to serve its next request — the failure mode that makes naive
//! one-bucket pools slower than the allocator they bypass.
//!
//! The pool is thread-local, so the campaign engine's worker threads each
//! keep their own arena and no synchronization is involved. Per-class
//! retention is capped and jumbo buffers are never pooled, so a burst
//! cannot pin memory forever.

use std::cell::RefCell;

/// Size classes are `2^MIN_CLASS_BITS ..= 2^MAX_CLASS_BITS` bytes; a
/// standard 1518-byte Ethernet frame lands in the 2 KiB class.
const MIN_CLASS_BITS: u32 = 6;
const MAX_CLASS_BITS: u32 = 12;
const CLASSES: usize = (MAX_CLASS_BITS - MIN_CLASS_BITS + 1) as usize;

/// Maximum number of buffers retained per class per thread.
const MAX_POOLED_PER_CLASS: usize = 64;

struct Pool {
    classes: [Vec<Vec<u8>>; CLASSES],
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool {
        classes: std::array::from_fn(|_| Vec::new()),
    });
}

/// The size class that can serve `capacity`, if any.
fn class_for_request(capacity: usize) -> Option<usize> {
    if capacity > (1 << MAX_CLASS_BITS) {
        return None;
    }
    let bits = capacity
        .next_power_of_two()
        .trailing_zeros()
        .max(MIN_CLASS_BITS);
    Some((bits - MIN_CLASS_BITS) as usize)
}

/// Takes an empty buffer with at least `capacity` spare capacity —
/// recycled when possible, freshly allocated otherwise. Allocations are
/// rounded up to the class size so the buffer re-enters its class on
/// recycle.
pub fn take_buffer(capacity: usize) -> Vec<u8> {
    match class_for_request(capacity) {
        Some(class) => {
            let reused = POOL.with(|p| p.borrow_mut().classes[class].pop());
            match reused {
                Some(buf) => buf,
                None => Vec::with_capacity(1 << (class as u32 + MIN_CLASS_BITS)),
            }
        }
        None => Vec::with_capacity(capacity),
    }
}

/// Returns a buffer to its size class. Buffers whose capacity is not an
/// exact class size (grown, shrunk, or foreign) and overflow beyond the
/// per-class cap fall through to the allocator.
pub fn recycle_buffer(mut buf: Vec<u8>) {
    let cap = buf.capacity();
    if !((1 << MIN_CLASS_BITS)..=(1 << MAX_CLASS_BITS)).contains(&cap) || !cap.is_power_of_two() {
        return;
    }
    let class = (cap.trailing_zeros() - MIN_CLASS_BITS) as usize;
    POOL.with(|p| {
        let pool = &mut p.borrow_mut().classes[class];
        if pool.len() < MAX_POOLED_PER_CLASS {
            buf.clear();
            pool.push(buf);
        }
    });
}

/// Number of buffers currently pooled on this thread (diagnostics/tests).
pub fn pooled_buffers() -> usize {
    POOL.with(|p| p.borrow().classes.iter().map(Vec::len).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_pool() {
        POOL.with(|p| {
            for class in &mut p.borrow_mut().classes {
                class.clear();
            }
        });
    }

    #[test]
    fn round_trip_reuses_buffer_without_realloc() {
        drain_pool();
        let mut buf = take_buffer(100);
        assert_eq!(buf.capacity(), 128);
        buf.extend_from_slice(&[1, 2, 3]);
        let ptr = buf.as_ptr();
        recycle_buffer(buf);
        assert_eq!(pooled_buffers(), 1);
        let again = take_buffer(128);
        assert_eq!(again.as_ptr(), ptr);
        assert!(again.is_empty());
        assert_eq!(pooled_buffers(), 0);
        drop(again);
    }

    #[test]
    fn classes_do_not_cross_contaminate() {
        drain_pool();
        recycle_buffer(Vec::with_capacity(64));
        // A 2 KiB request must not dequeue the 64-byte buffer.
        let big = take_buffer(1518);
        assert!(big.capacity() >= 1518);
        assert_eq!(pooled_buffers(), 1);
    }

    #[test]
    fn jumbo_and_odd_capacity_buffers_not_pooled() {
        drain_pool();
        recycle_buffer(Vec::with_capacity((1 << MAX_CLASS_BITS) + 1));
        recycle_buffer(Vec::with_capacity(100)); // not a power of two
        recycle_buffer(Vec::new());
        assert_eq!(pooled_buffers(), 0);
    }

    #[test]
    fn small_requests_share_the_min_class() {
        assert_eq!(class_for_request(1), Some(0));
        assert_eq!(class_for_request(64), Some(0));
        assert_eq!(class_for_request(65), Some(1));
        assert_eq!(class_for_request(1518), Some(5));
        assert_eq!(class_for_request(4096), Some(6));
        assert_eq!(class_for_request(4097), None);
    }
}

//! RFC 1071 internet checksum, including the TCP/UDP pseudo-header.

use std::net::Ipv4Addr;

/// Computes the one's-complement internet checksum over `data`.
///
/// This is the checksum algorithm used by IPv4, TCP and UDP. Odd-length
/// input is padded with a trailing zero byte, as the RFC requires.
///
/// ```
/// // The classic RFC 1071 worked example.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(vw_packet::checksum::checksum(&data), !0xddf2);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum_words(data))
}

/// Accumulates the 16-bit one's-complement sum of `data` (no final
/// complement), so partial sums over disjoint ranges can be combined.
///
/// ```
/// use vw_packet::checksum::{checksum, finish, sum_words};
/// let data = b"an example payload";
/// let (a, b) = data.split_at(8); // even split keeps word alignment
/// assert_eq!(checksum(data), finish(sum_words(a) + sum_words(b)));
/// ```
pub fn sum_words(data: &[u8]) -> u32 {
    // Eight bytes per iteration: each u64 load is four 16-bit words summed
    // into independent lanes of a u64 accumulator, so the loop runs at
    // word width instead of byte-pair width. Lane sums cannot overflow:
    // each addend is < 2^16 and inputs are frame-sized.
    let mut wide = 0u64;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        wide += (w >> 48) + ((w >> 32) & 0xffff) + ((w >> 16) & 0xffff) + (w & 0xffff);
    }
    let mut tail = chunks.remainder().chunks_exact(2);
    for chunk in &mut tail {
        wide += u64::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = tail.remainder() {
        wide += u64::from(u16::from_be_bytes([*last, 0]));
    }
    // Fold to u32 so partial sums still combine with plain `+`.
    while wide >> 32 != 0 {
        wide = (wide & 0xffff_ffff) + (wide >> 32);
    }
    wide as u32
}

/// Folds carries and complements a partial sum produced by [`sum_words`].
pub fn finish(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Computes the TCP/UDP checksum with the IPv4 pseudo-header prepended.
///
/// `segment` must be the full transport header plus payload, with its
/// checksum field zeroed. `protocol` is the IP protocol number (6 for TCP,
/// 17 for UDP).
///
/// ```
/// use std::net::Ipv4Addr;
/// use vw_packet::checksum::pseudo_header_checksum;
///
/// let src = Ipv4Addr::new(192, 168, 1, 1);
/// let dst = Ipv4Addr::new(192, 168, 1, 2);
/// let segment = [0u8; 20];
/// let sum = pseudo_header_checksum(src, dst, 6, &segment);
/// assert_ne!(sum, 0);
/// ```
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src.octets());
    pseudo[4..8].copy_from_slice(&dst.octets());
    pseudo[9] = protocol;
    let len = segment.len() as u16;
    pseudo[10..12].copy_from_slice(&len.to_be_bytes());
    finish(sum_words(&pseudo) + sum_words(segment))
}

/// Verifies a transport segment whose checksum field is *in place*: the sum
/// over pseudo-header + segment must be zero.
pub fn verify_pseudo_header_checksum(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> bool {
    pseudo_header_checksum(src, dst, protocol, segment) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_data_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn known_ipv4_header_vector() {
        // Example IPv4 header from RFC 1071 discussions / Wikipedia, with
        // checksum field (bytes 10-11) zeroed; expected checksum 0xb861.
        let header = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&header), 0xb861);
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut segment = vec![0u8; 28];
        segment[0] = 0x12;
        segment[1] = 0x34;
        let sum = pseudo_header_checksum(src, dst, 17, &segment);
        segment[6..8].copy_from_slice(&sum.to_be_bytes());
        assert!(verify_pseudo_header_checksum(src, dst, 17, &segment));
        segment[20] ^= 0x40;
        assert!(!verify_pseudo_header_checksum(src, dst, 17, &segment));
    }

    proptest! {
        #[test]
        fn checksummed_data_always_verifies(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            // Append the checksum as a trailer; total must then verify to 0.
            let sum = checksum(&data);
            let mut with_sum = data.clone();
            with_sum.extend_from_slice(&sum.to_be_bytes());
            // Only guaranteed when data length is even (trailer stays aligned).
            if data.len() % 2 == 0 {
                prop_assert_eq!(checksum(&with_sum), 0);
            }
        }

        #[test]
        fn split_sums_equal_full_sum(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
            let split = (split / 2 * 2).min(data.len()); // keep 16-bit alignment
            let (a, b) = data.split_at(split);
            prop_assert_eq!(finish(sum_words(a) + sum_words(b)), checksum(&data));
        }
    }
}

//! Packet parsing errors.

use std::error::Error;
use std::fmt;

/// Error returned when raw bytes cannot be interpreted as the requested
/// header or address.
///
/// ```
/// use vw_packet::MacAddr;
/// let err = "not-a-mac".parse::<MacAddr>().unwrap_err();
/// assert!(err.to_string().contains("not-a-mac"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    /// Creates an error with the given human-readable message.
    pub fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }

    /// The human-readable description of what failed to parse.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_message() {
        let err = ParseError::new("frame too short for IPv4 header");
        assert_eq!(err.to_string(), "frame too short for IPv4 header");
        assert_eq!(err.message(), "frame too short for IPv4 header");
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<ParseError>();
    }
}

//! Ethernet II header view and builder.

use crate::{EtherType, Frame, MacAddr, ParseError};

/// Length of the Ethernet II header: two MAC addresses plus the EtherType.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Borrowed view of an Ethernet II header at the start of a frame buffer.
///
/// ```
/// use vw_packet::{EtherType, EthernetBuilder, EthernetHeader, MacAddr};
/// let frame = EthernetBuilder::new()
///     .src(MacAddr::from_index(1))
///     .dst(MacAddr::from_index(2))
///     .ethertype(EtherType::IPV4)
///     .build();
/// let eth = EthernetHeader::new(frame.bytes()).unwrap();
/// assert_eq!(eth.ethertype(), EtherType::IPV4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader<'a> {
    bytes: &'a [u8],
}

impl<'a> EthernetHeader<'a> {
    /// Interprets the start of `bytes` as an Ethernet header.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if fewer than 14 bytes are available.
    pub fn new(bytes: &'a [u8]) -> Result<Self, ParseError> {
        if bytes.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::new("buffer too short for Ethernet header"));
        }
        Ok(EthernetHeader { bytes })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let mut o = [0u8; 6];
        o.copy_from_slice(&self.bytes[0..6]);
        MacAddr::new(o)
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let mut o = [0u8; 6];
        o.copy_from_slice(&self.bytes[6..12]);
        MacAddr::new(o)
    }

    /// EtherType of the encapsulated payload.
    pub fn ethertype(&self) -> EtherType {
        EtherType(u16::from_be_bytes([self.bytes[12], self.bytes[13]]))
    }

    /// The payload following the header.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[ETHERNET_HEADER_LEN..]
    }
}

/// Builder for raw Ethernet frames (used directly by the Rether, RLL and
/// VirtualWire control protocols; IP traffic goes through the higher-level
/// [`TcpBuilder`](crate::TcpBuilder)/[`UdpBuilder`](crate::UdpBuilder)).
///
/// ```
/// use vw_packet::{EtherType, EthernetBuilder, MacAddr};
/// let frame = EthernetBuilder::new()
///     .src(MacAddr::from_index(1))
///     .dst(MacAddr::BROADCAST)
///     .ethertype(EtherType::VW_CONTROL)
///     .payload(&[1, 2, 3])
///     .build();
/// assert_eq!(frame.payload(), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EthernetBuilder {
    dst: MacAddr,
    src: MacAddr,
    ethertype: EtherType,
    payload: Vec<u8>,
}

impl EthernetBuilder {
    /// Creates a builder with zeroed addresses and an IPv4 EtherType.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the destination MAC address.
    pub fn dst(mut self, dst: MacAddr) -> Self {
        self.dst = dst;
        self
    }

    /// Sets the source MAC address.
    pub fn src(mut self, src: MacAddr) -> Self {
        self.src = src;
        self
    }

    /// Sets the EtherType.
    pub fn ethertype(mut self, ethertype: EtherType) -> Self {
        self.ethertype = ethertype;
        self
    }

    /// Sets the payload bytes.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        let mut buf = crate::arena::take_buffer(payload.len());
        buf.extend_from_slice(payload);
        self.payload = buf;
        self
    }

    /// Sets the payload from an owned buffer, avoiding a copy.
    pub fn payload_owned(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Assembles the frame.
    pub fn build(&self) -> Frame {
        let mut bytes = crate::arena::take_buffer(ETHERNET_HEADER_LEN + self.payload.len());
        bytes.extend_from_slice(&self.dst.octets());
        bytes.extend_from_slice(&self.src.octets());
        bytes.extend_from_slice(&self.ethertype.value().to_be_bytes());
        bytes.extend_from_slice(&self.payload);
        Frame::from_bytes(bytes).expect("built frame always has a header")
    }

    /// Assembles the frame, consuming the builder and returning its
    /// payload buffer to the [`arena`](crate::arena). Per-frame
    /// encapsulation paths use this so the staging buffer is reused
    /// instead of freed.
    pub fn build_take(mut self) -> Frame {
        let payload = std::mem::take(&mut self.payload);
        let frame = {
            let mut bytes = crate::arena::take_buffer(ETHERNET_HEADER_LEN + payload.len());
            bytes.extend_from_slice(&self.dst.octets());
            bytes.extend_from_slice(&self.src.octets());
            bytes.extend_from_slice(&self.ethertype.value().to_be_bytes());
            bytes.extend_from_slice(&payload);
            Frame::from_bytes(bytes).expect("built frame always has a header")
        };
        crate::arena::recycle_buffer(payload);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_rejects_short_buffer() {
        assert!(EthernetHeader::new(&[0u8; 13]).is_err());
        assert!(EthernetHeader::new(&[0u8; 14]).is_ok());
    }

    #[test]
    fn builder_and_view_agree() {
        let frame = EthernetBuilder::new()
            .src(MacAddr::from_index(5))
            .dst(MacAddr::from_index(6))
            .ethertype(EtherType::RETHER)
            .payload(&[0xAA, 0xBB])
            .build();
        let eth = EthernetHeader::new(frame.bytes()).unwrap();
        assert_eq!(eth.src(), MacAddr::from_index(5));
        assert_eq!(eth.dst(), MacAddr::from_index(6));
        assert_eq!(eth.ethertype(), EtherType::RETHER);
        assert_eq!(eth.payload(), &[0xAA, 0xBB]);
    }

    #[test]
    fn payload_owned_matches_payload() {
        let a = EthernetBuilder::new().payload(&[1, 2, 3]).build();
        let b = EthernetBuilder::new().payload_owned(vec![1, 2, 3]).build();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_payload_is_header_only() {
        let frame = EthernetBuilder::new().build();
        assert_eq!(frame.len(), ETHERNET_HEADER_LEN);
        assert!(frame.payload().is_empty());
    }
}

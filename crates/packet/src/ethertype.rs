//! EtherType values used across the reproduction.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 16-bit EtherType identifying the protocol carried in an Ethernet frame.
///
/// Besides the standard [`IPV4`](EtherType::IPV4) value, the reproduction
/// reserves three values that mirror the paper's wire formats:
///
/// * [`RETHER`](EtherType::RETHER) (`0x9900`) — the Rether control-packet
///   protocol identifier quoted in Section 6.2,
/// * [`VW_CONTROL`](EtherType::VW_CONTROL) — VirtualWire's control-plane
///   protocol ("payloads of raw Ethernet frames", Section 5.2),
/// * [`RLL`](EtherType::RLL) — the Reliable Link Layer encapsulation.
///
/// ```
/// use vw_packet::EtherType;
/// assert_eq!(EtherType::IPV4.value(), 0x0800);
/// assert_eq!(EtherType::RETHER.value(), 0x9900);
/// assert_eq!(format!("{}", EtherType::IPV4), "0x0800");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EtherType(pub u16);

impl EtherType {
    /// Internet Protocol version 4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// Address Resolution Protocol (unused by the simulator, parsed for
    /// completeness).
    pub const ARP: EtherType = EtherType(0x0806);
    /// Rether control packets (token, token-ack, ring management).
    pub const RETHER: EtherType = EtherType(0x9900);
    /// VirtualWire control-plane messages.
    pub const VW_CONTROL: EtherType = EtherType(0x88B5);
    /// Reliable Link Layer encapsulation.
    pub const RLL: EtherType = EtherType(0x88B6);

    /// The raw 16-bit value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl Default for EtherType {
    /// IPv4, by far the most common payload in the testbeds.
    fn default() -> Self {
        EtherType::IPV4
    }
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        EtherType(value)
    }
}

impl From<EtherType> for u16 {
    fn from(ethertype: EtherType) -> Self {
        ethertype.0
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

impl fmt::Debug for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EtherType::IPV4 => write!(f, "EtherType(IPv4)"),
            EtherType::ARP => write!(f, "EtherType(ARP)"),
            EtherType::RETHER => write!(f, "EtherType(Rether)"),
            EtherType::VW_CONTROL => write!(f, "EtherType(VW-control)"),
            EtherType::RLL => write!(f, "EtherType(RLL)"),
            EtherType(v) => write!(f, "EtherType(0x{v:04x})"),
        }
    }
}

impl fmt::LowerHex for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let e: EtherType = 0x9900u16.into();
        assert_eq!(e, EtherType::RETHER);
        let v: u16 = e.into();
        assert_eq!(v, 0x9900);
    }

    #[test]
    fn debug_names_known_values() {
        assert_eq!(format!("{:?}", EtherType::IPV4), "EtherType(IPv4)");
        assert_eq!(format!("{:?}", EtherType(0x1234)), "EtherType(0x1234)");
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", EtherType::IPV4), "800");
        assert_eq!(format!("{:X}", EtherType::RETHER), "9900");
    }

    #[test]
    fn reserved_values_are_distinct() {
        let all = [
            EtherType::IPV4,
            EtherType::ARP,
            EtherType::RETHER,
            EtherType::VW_CONTROL,
            EtherType::RLL,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}

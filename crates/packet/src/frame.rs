//! The owned Ethernet frame type.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ethernet::{EthernetHeader, ETHERNET_HEADER_LEN};
use crate::ipv4::Ipv4Header;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::{EtherType, MacAddr, ParseError};

/// An owned Ethernet II frame: the unit of transmission everywhere in the
/// reproduction.
///
/// A `Frame` is a validated byte buffer (at least the 14-byte Ethernet
/// header). Typed views over the link, network, and transport headers are
/// available through [`ethernet`](Frame::ethernet), [`ipv4`](Frame::ipv4),
/// [`tcp`](Frame::tcp) and [`udp`](Frame::udp); raw byte access for the
/// FSL's offset/mask/pattern matching is available through
/// [`bytes`](Frame::bytes) and [`set_bytes`](Frame::set_bytes).
///
/// # Examples
///
/// ```
/// use vw_packet::{EtherType, EthernetBuilder, Frame, MacAddr};
///
/// let frame = EthernetBuilder::new()
///     .src(MacAddr::from_index(1))
///     .dst(MacAddr::BROADCAST)
///     .ethertype(EtherType::RETHER)
///     .payload(&[0x00, 0x01])
///     .build();
/// assert_eq!(frame.ethertype(), EtherType::RETHER);
/// assert!(frame.dst().is_broadcast());
/// ```
#[derive(PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    bytes: Vec<u8>,
}

impl Clone for Frame {
    fn clone(&self) -> Self {
        // Fan-out points (hub repeat, switch flood, DUP) clone frames on
        // the hot path; take the copy's buffer from the arena instead of
        // the allocator.
        let mut bytes = crate::arena::take_buffer(self.bytes.len());
        bytes.extend_from_slice(&self.bytes);
        Frame { bytes }
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        crate::arena::recycle_buffer(std::mem::take(&mut self.bytes));
    }
}

impl Frame {
    /// Wraps raw bytes as a frame.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if `bytes` is shorter than the 14-byte
    /// Ethernet header.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ParseError> {
        if bytes.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::new(format!(
                "frame of {} bytes is shorter than the Ethernet header",
                bytes.len()
            )));
        }
        Ok(Frame { bytes })
    }

    /// The full frame contents, header included.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the frame, returning the underlying buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        // Take the buffer out so `Drop` (which recycles into the arena)
        // sees an empty, capacity-zero vector and leaves it alone.
        std::mem::take(&mut self.bytes)
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `false`: a frame always contains at least its Ethernet header.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let mut octets = [0u8; 6];
        octets.copy_from_slice(&self.bytes[0..6]);
        MacAddr::new(octets)
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let mut octets = [0u8; 6];
        octets.copy_from_slice(&self.bytes[6..12]);
        MacAddr::new(octets)
    }

    /// The EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType(u16::from_be_bytes([self.bytes[12], self.bytes[13]]))
    }

    /// Rewrites the destination MAC address.
    pub fn set_dst(&mut self, dst: MacAddr) {
        self.bytes[0..6].copy_from_slice(&dst.octets());
    }

    /// Rewrites the source MAC address.
    pub fn set_src(&mut self, src: MacAddr) {
        self.bytes[6..12].copy_from_slice(&src.octets());
    }

    /// The Ethernet payload (everything after the 14-byte header).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[ETHERNET_HEADER_LEN..]
    }

    /// Typed view of the Ethernet header.
    pub fn ethernet(&self) -> EthernetHeader<'_> {
        EthernetHeader::new(&self.bytes).expect("frame invariant guarantees header")
    }

    /// Typed view of the IPv4 header, if this is an IPv4 frame of
    /// sufficient length.
    pub fn ipv4(&self) -> Option<Ipv4Header<'_>> {
        Ipv4Header::new(&self.bytes).ok()
    }

    /// Typed view of the TCP header, if this is an IPv4/TCP frame.
    pub fn tcp(&self) -> Option<TcpHeader<'_>> {
        TcpHeader::new(&self.bytes).ok()
    }

    /// Typed view of the UDP header, if this is an IPv4/UDP frame.
    pub fn udp(&self) -> Option<UdpHeader<'_>> {
        UdpHeader::new(&self.bytes).ok()
    }

    /// Reads `len` bytes starting at `offset`, as the FSL packet matcher
    /// does. Returns `None` if the range falls outside the frame.
    pub fn read_at(&self, offset: usize, len: usize) -> Option<&[u8]> {
        self.bytes.get(offset..offset.checked_add(len)?)
    }

    /// Overwrites bytes starting at `offset` (the `MODIFY` fault uses this).
    ///
    /// Returns `false` without writing if the range falls outside the frame
    /// or would touch the Ethernet header of a too-short frame.
    pub fn set_bytes(&mut self, offset: usize, data: &[u8]) -> bool {
        match offset
            .checked_add(data.len())
            .and_then(|end| self.bytes.get_mut(offset..end))
        {
            Some(slice) => {
                slice.copy_from_slice(data);
                true
            }
            None => false,
        }
    }

    /// Flips a single bit, used by bit-error models. Returns `false` if the
    /// byte index is out of range.
    pub fn flip_bit(&mut self, byte: usize, bit: u8) -> bool {
        debug_assert!(bit < 8);
        match self.bytes.get_mut(byte) {
            Some(b) => {
                *b ^= 1 << (bit & 7);
                true
            }
            None => false,
        }
    }

    /// Renders a `tcpdump -X`-style hexdump, 16 bytes per line with an
    /// ASCII gutter.
    ///
    /// ```
    /// use vw_packet::{EtherType, EthernetBuilder, MacAddr};
    /// let f = EthernetBuilder::new()
    ///     .src(MacAddr::ZERO).dst(MacAddr::BROADCAST)
    ///     .ethertype(EtherType::IPV4).payload(b"hi").build();
    /// assert!(f.hexdump().starts_with("0x0000"));
    /// ```
    pub fn hexdump(&self) -> String {
        let mut out = String::new();
        for (line_no, chunk) in self.bytes.chunks(16).enumerate() {
            out.push_str(&format!("0x{:04x}:  ", line_no * 16));
            for pair in chunk.chunks(2) {
                for b in pair {
                    out.push_str(&format!("{b:02x}"));
                }
                out.push(' ');
            }
            // Pad to a fixed gutter column: 8 pairs of "xxxx " = 40 chars.
            let written = chunk.chunks(2).map(|p| p.len() * 2 + 1).sum::<usize>();
            for _ in written..40 {
                out.push(' ');
            }
            out.push(' ');
            for b in chunk {
                let c = *b as char;
                out.push(if c.is_ascii_graphic() || c == ' ' {
                    c
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl TryFrom<Vec<u8>> for Frame {
    type Error = ParseError;

    fn try_from(bytes: Vec<u8>) -> Result<Self, Self::Error> {
        Frame::from_bytes(bytes)
    }
}

impl From<Frame> for Vec<u8> {
    fn from(frame: Frame) -> Self {
        frame.into_bytes()
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame({} -> {}, {:?}, {} bytes)",
            self.src(),
            self.dst(),
            self.ethertype(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EthernetBuilder;
    use proptest::prelude::*;

    fn sample() -> Frame {
        EthernetBuilder::new()
            .src(MacAddr::from_index(1))
            .dst(MacAddr::from_index(2))
            .ethertype(EtherType::IPV4)
            .payload(&[1, 2, 3, 4, 5])
            .build()
    }

    #[test]
    fn from_bytes_rejects_short_input() {
        assert!(Frame::from_bytes(vec![0u8; 13]).is_err());
        assert!(Frame::from_bytes(vec![0u8; 14]).is_ok());
    }

    #[test]
    fn header_accessors() {
        let f = sample();
        assert_eq!(f.src(), MacAddr::from_index(1));
        assert_eq!(f.dst(), MacAddr::from_index(2));
        assert_eq!(f.ethertype(), EtherType::IPV4);
        assert_eq!(f.payload(), &[1, 2, 3, 4, 5]);
        assert_eq!(f.len(), 19);
        assert!(!f.is_empty());
    }

    #[test]
    fn rewrite_addresses() {
        let mut f = sample();
        f.set_dst(MacAddr::BROADCAST);
        f.set_src(MacAddr::from_index(9));
        assert!(f.dst().is_broadcast());
        assert_eq!(f.src(), MacAddr::from_index(9));
    }

    #[test]
    fn read_at_bounds() {
        let f = sample();
        assert_eq!(f.read_at(14, 2), Some(&[1u8, 2][..]));
        assert_eq!(f.read_at(18, 1), Some(&[5u8][..]));
        assert_eq!(f.read_at(18, 2), None);
        assert_eq!(f.read_at(usize::MAX, 2), None);
    }

    #[test]
    fn set_bytes_bounds() {
        let mut f = sample();
        assert!(f.set_bytes(14, &[9, 9]));
        assert_eq!(f.payload()[..2], [9, 9]);
        assert!(!f.set_bytes(18, &[1, 2]));
        assert!(!f.set_bytes(usize::MAX, &[1]));
    }

    #[test]
    fn flip_bit_round_trip() {
        let mut f = sample();
        let before = f.bytes()[15];
        assert!(f.flip_bit(15, 3));
        assert_eq!(f.bytes()[15], before ^ 0b1000);
        assert!(f.flip_bit(15, 3));
        assert_eq!(f.bytes()[15], before);
        assert!(!f.flip_bit(1000, 0));
    }

    #[test]
    fn hexdump_has_expected_shape() {
        let dump = sample().hexdump();
        assert!(dump.starts_with("0x0000:"));
        assert!(dump.contains("0x0010:"));
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn debug_is_compact() {
        let text = format!("{:?}", sample());
        assert!(text.contains("Frame("));
        assert!(text.contains("19 bytes"));
    }

    proptest! {
        #[test]
        fn byte_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            let f = EthernetBuilder::new()
                .src(MacAddr::from_index(3))
                .dst(MacAddr::from_index(4))
                .ethertype(EtherType(0xBEEF))
                .payload(&payload)
                .build();
            let bytes = f.clone().into_bytes();
            let back = Frame::from_bytes(bytes).unwrap();
            prop_assert_eq!(back, f);
        }
    }
}

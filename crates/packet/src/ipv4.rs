//! IPv4 header view and builder.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::checksum;
use crate::ethernet::ETHERNET_HEADER_LEN;
use crate::{EtherType, ParseError};

/// Length of an option-less IPv4 header. The simulated stacks never emit IP
/// options, matching the layout the paper's byte-offset filters assume.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IP protocol number (the IPv4 `protocol` field).
///
/// ```
/// use vw_packet::IpProtocol;
/// assert_eq!(IpProtocol::TCP.value(), 6);
/// assert_eq!(IpProtocol::UDP.value(), 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpProtocol(pub u8);

impl IpProtocol {
    /// Transmission Control Protocol.
    pub const TCP: IpProtocol = IpProtocol(6);
    /// User Datagram Protocol.
    pub const UDP: IpProtocol = IpProtocol(17);
    /// Internet Control Message Protocol (parsed, not generated).
    pub const ICMP: IpProtocol = IpProtocol(1);

    /// The raw protocol number.
    pub const fn value(self) -> u8 {
        self.0
    }
}

impl From<u8> for IpProtocol {
    fn from(value: u8) -> Self {
        IpProtocol(value)
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> Self {
        p.0
    }
}

impl fmt::Debug for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IpProtocol::TCP => write!(f, "IpProtocol(TCP)"),
            IpProtocol::UDP => write!(f, "IpProtocol(UDP)"),
            IpProtocol::ICMP => write!(f, "IpProtocol(ICMP)"),
            IpProtocol(v) => write!(f, "IpProtocol({v})"),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IpProtocol::TCP => f.write_str("tcp"),
            IpProtocol::UDP => f.write_str("udp"),
            IpProtocol::ICMP => f.write_str("icmp"),
            IpProtocol(v) => write!(f, "proto-{v}"),
        }
    }
}

/// Borrowed view of the IPv4 header inside a full Ethernet frame buffer.
///
/// The view is anchored at absolute frame offsets (Ethernet header first),
/// matching how the FSL filter tuples address packet bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header<'a> {
    bytes: &'a [u8],
}

impl<'a> Ipv4Header<'a> {
    /// Interprets `frame` (a full Ethernet frame) as carrying IPv4.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the EtherType is not IPv4, the buffer is
    /// too short, or the version/IHL byte is not `0x45`.
    pub fn new(frame: &'a [u8]) -> Result<Self, ParseError> {
        if frame.len() < ETHERNET_HEADER_LEN + IPV4_HEADER_LEN {
            return Err(ParseError::new("frame too short for IPv4 header"));
        }
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
        if ethertype != EtherType::IPV4.value() {
            return Err(ParseError::new(format!(
                "ethertype 0x{ethertype:04x} is not IPv4"
            )));
        }
        if frame[ETHERNET_HEADER_LEN] != 0x45 {
            return Err(ParseError::new(format!(
                "unsupported IPv4 version/IHL byte 0x{:02x}",
                frame[ETHERNET_HEADER_LEN]
            )));
        }
        Ok(Ipv4Header { bytes: frame })
    }

    fn ip(&self) -> &'a [u8] {
        &self.bytes[ETHERNET_HEADER_LEN..]
    }

    /// The total-length field (header + payload, in bytes).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.ip()[2], self.ip()[3]])
    }

    /// The identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.ip()[4], self.ip()[5]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.ip()[8]
    }

    /// The encapsulated protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol(self.ip()[9])
    }

    /// The header checksum field as transmitted.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.ip()[10], self.ip()[11]])
    }

    /// Source IPv4 address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.ip();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination IPv4 address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.ip();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// The transport payload (bounded by the total-length field, which may
    /// be nonsense on a corrupted frame — the range is clamped to the
    /// buffer).
    pub fn payload(&self) -> &'a [u8] {
        let total = self.total_len() as usize;
        let end = (ETHERNET_HEADER_LEN + total).min(self.bytes.len());
        let start = (ETHERNET_HEADER_LEN + IPV4_HEADER_LEN).min(end);
        &self.bytes[start..end]
    }

    /// Recomputes the header checksum and compares with the stored value.
    pub fn verify_checksum(&self) -> bool {
        checksum::checksum(&self.ip()[..IPV4_HEADER_LEN]) == 0
    }
}

/// Builder for the IPv4 portion of a frame. Produces the raw IP packet
/// bytes; the transport builders compose it under an Ethernet header.
///
/// ```
/// use std::net::Ipv4Addr;
/// use vw_packet::{IpProtocol, Ipv4Builder};
///
/// let packet = Ipv4Builder::new()
///     .src(Ipv4Addr::new(10, 0, 0, 1))
///     .dst(Ipv4Addr::new(10, 0, 0, 2))
///     .protocol(IpProtocol::UDP)
///     .payload(&[0u8; 8])
///     .build_packet();
/// assert_eq!(packet.len(), 28);
/// ```
#[derive(Debug, Clone)]
pub struct Ipv4Builder {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: IpProtocol,
    ttl: u8,
    ident: u16,
    payload: Vec<u8>,
}

impl Default for Ipv4Builder {
    fn default() -> Self {
        Ipv4Builder {
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::UNSPECIFIED,
            protocol: IpProtocol::UDP,
            ttl: 64,
            ident: 0,
            payload: Vec::new(),
        }
    }
}

impl Ipv4Builder {
    /// Creates a builder with TTL 64 and unspecified addresses.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source address.
    pub fn src(mut self, src: Ipv4Addr) -> Self {
        self.src = src;
        self
    }

    /// Sets the destination address.
    pub fn dst(mut self, dst: Ipv4Addr) -> Self {
        self.dst = dst;
        self
    }

    /// Sets the encapsulated protocol.
    pub fn protocol(mut self, protocol: IpProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the time-to-live.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the identification field.
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Sets the transport payload.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        let mut buf = crate::arena::take_buffer(payload.len());
        buf.extend_from_slice(payload);
        self.payload = buf;
        self
    }

    /// Sets the transport payload from an owned buffer, avoiding a copy.
    pub fn payload_owned(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Assembles the IP packet (header + payload) with a valid checksum.
    pub fn build_packet(&self) -> Vec<u8> {
        let total_len = (IPV4_HEADER_LEN + self.payload.len()) as u16;
        let mut packet = crate::arena::take_buffer(total_len as usize);
        packet.push(0x45); // version 4, IHL 5
        packet.push(0x00); // DSCP/ECN
        packet.extend_from_slice(&total_len.to_be_bytes());
        packet.extend_from_slice(&self.ident.to_be_bytes());
        packet.extend_from_slice(&[0x40, 0x00]); // flags: don't fragment
        packet.push(self.ttl);
        packet.push(self.protocol.value());
        packet.extend_from_slice(&[0, 0]); // checksum placeholder
        packet.extend_from_slice(&self.src.octets());
        packet.extend_from_slice(&self.dst.octets());
        let sum = checksum::checksum(&packet[..IPV4_HEADER_LEN]);
        packet[10..12].copy_from_slice(&sum.to_be_bytes());
        packet.extend_from_slice(&self.payload);
        packet
    }

    /// Assembles the IP packet, consuming the builder and returning its
    /// payload buffer to the [`arena`](crate::arena). The per-segment
    /// transport builders use this so the staging buffer is reused.
    pub fn build_packet_take(mut self) -> Vec<u8> {
        let packet = self.build_packet();
        crate::arena::recycle_buffer(std::mem::take(&mut self.payload));
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EthernetBuilder, MacAddr};

    fn wrap(packet: Vec<u8>) -> crate::Frame {
        EthernetBuilder::new()
            .src(MacAddr::from_index(1))
            .dst(MacAddr::from_index(2))
            .ethertype(EtherType::IPV4)
            .payload_owned(packet)
            .build()
    }

    #[test]
    fn build_and_parse_round_trip() {
        let frame = wrap(
            Ipv4Builder::new()
                .src(Ipv4Addr::new(192, 168, 1, 1))
                .dst(Ipv4Addr::new(192, 168, 1, 2))
                .protocol(IpProtocol::TCP)
                .ttl(32)
                .ident(0xBEEF)
                .payload(&[7; 11])
                .build_packet(),
        );
        let ip = frame.ipv4().expect("valid IPv4");
        assert_eq!(ip.src(), Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(ip.dst(), Ipv4Addr::new(192, 168, 1, 2));
        assert_eq!(ip.protocol(), IpProtocol::TCP);
        assert_eq!(ip.ttl(), 32);
        assert_eq!(ip.ident(), 0xBEEF);
        assert_eq!(ip.total_len(), 31);
        assert_eq!(ip.payload(), &[7; 11]);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut frame = wrap(Ipv4Builder::new().payload(&[1, 2, 3]).build_packet());
        assert!(frame.ipv4().unwrap().verify_checksum());
        frame.flip_bit(crate::offsets::IP_SRC, 0);
        assert!(!frame.ipv4().unwrap().verify_checksum());
    }

    #[test]
    fn non_ipv4_frames_rejected() {
        let frame = EthernetBuilder::new()
            .ethertype(EtherType::RETHER)
            .payload(&[0u8; 40])
            .build();
        assert!(frame.ipv4().is_none());
    }

    #[test]
    fn short_frames_rejected() {
        let frame = EthernetBuilder::new()
            .ethertype(EtherType::IPV4)
            .payload(&[0x45; 10])
            .build();
        assert!(frame.ipv4().is_none());
    }

    #[test]
    fn options_rejected() {
        // IHL of 6 (header with options) is unsupported by design.
        let mut packet = Ipv4Builder::new().build_packet();
        packet[0] = 0x46;
        let frame = wrap(packet);
        assert!(frame.ipv4().is_none());
    }

    #[test]
    fn payload_bounded_by_total_len() {
        // Frame padded beyond the IP total length: payload must not include
        // the padding.
        let mut packet = Ipv4Builder::new().payload(&[9, 9]).build_packet();
        packet.extend_from_slice(&[0xEE; 4]); // Ethernet padding
        let frame = wrap(packet);
        assert_eq!(frame.ipv4().unwrap().payload(), &[9, 9]);
    }

    #[test]
    fn protocol_display_and_debug() {
        assert_eq!(IpProtocol::TCP.to_string(), "tcp");
        assert_eq!(IpProtocol(42).to_string(), "proto-42");
        assert_eq!(format!("{:?}", IpProtocol::UDP), "IpProtocol(UDP)");
    }
}

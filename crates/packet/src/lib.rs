//! Packet and frame model for the VirtualWire reproduction.
//!
//! This crate provides the byte-level substrate every other crate builds on:
//!
//! * [`MacAddr`] and [`EtherType`] — link-layer addressing,
//! * [`Frame`] — an owned Ethernet frame with typed header accessors,
//! * header views and builders for Ethernet, IPv4, TCP and UDP
//!   ([`EthernetHeader`], [`Ipv4Header`], [`TcpHeader`], [`UdpHeader`]),
//! * RFC 1071 internet [`checksum`]s including TCP/UDP pseudo-headers,
//! * the well-known byte offsets used by the paper's Fault Specification
//!   Language examples ([`offsets`]).
//!
//! The layout assumed throughout is the one the paper's scripts assume: a
//! 14-byte Ethernet II header followed by a 20-byte (option-less) IPv4
//! header, so the TCP source port lives at byte 34, the destination port at
//! byte 36, the sequence number at 38, the acknowledgment number at 42, and
//! the flags byte at 47 — exactly the offsets that appear in Figure 2 of the
//! paper.
//!
//! # Examples
//!
//! Build a TCP SYN frame and inspect it through the typed views:
//!
//! ```
//! use vw_packet::{Frame, MacAddr, TcpBuilder, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let frame = TcpBuilder::new()
//!     .src_mac(MacAddr::new([0, 0x46, 0x61, 0xaf, 0xfe, 0x23]))
//!     .dst_mac(MacAddr::new([0, 0x23, 0x31, 0xdf, 0xaf, 0x12]))
//!     .src_ip(Ipv4Addr::new(192, 168, 1, 1))
//!     .dst_ip(Ipv4Addr::new(192, 168, 1, 2))
//!     .src_port(0x6000)
//!     .dst_port(0x4000)
//!     .seq(1000)
//!     .flags(TcpFlags::SYN)
//!     .build();
//!
//! let tcp = frame.tcp().expect("TCP frame");
//! assert_eq!(tcp.src_port(), 0x6000);
//! assert!(tcp.flags().contains(TcpFlags::SYN));
//! assert!(frame.ipv4().unwrap().verify_checksum());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod checksum;
mod error;
mod ethernet;
mod ethertype;
mod frame;
mod ipv4;
mod mac;
pub mod offsets;
mod tcp;
mod udp;

pub use error::ParseError;
pub use ethernet::{EthernetBuilder, EthernetHeader, ETHERNET_HEADER_LEN};
pub use ethertype::EtherType;
pub use frame::Frame;
pub use ipv4::{IpProtocol, Ipv4Builder, Ipv4Header, IPV4_HEADER_LEN};
pub use mac::MacAddr;
pub use tcp::{TcpBuilder, TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpBuilder, UdpHeader, UDP_HEADER_LEN};

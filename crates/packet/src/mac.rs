//! MAC (hardware) addresses.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ParseError;

/// A 48-bit IEEE 802 MAC address.
///
/// Used as the link-layer identity of every simulated NIC, and in the FSL
/// *Node Table* which maps a node name to its hardware and IP addresses.
///
/// # Examples
///
/// ```
/// use vw_packet::MacAddr;
///
/// let mac: MacAddr = "00:46:61:af:fe:23".parse().unwrap();
/// assert_eq!(mac.to_string(), "00:46:61:af:fe:23");
/// assert!(!mac.is_broadcast());
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder before assignment.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Creates a locally-administered unicast address from a small node
    /// index, convenient for building simulated testbeds.
    ///
    /// ```
    /// use vw_packet::MacAddr;
    /// assert_ne!(MacAddr::from_index(1), MacAddr::from_index(2));
    /// ```
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns the six octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Returns `true` if the group (multicast) bit is set; broadcast counts.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl Default for MacAddr {
    /// The all-zero placeholder address.
    fn default() -> Self {
        MacAddr::ZERO
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl FromStr for MacAddr {
    type Err = ParseError;

    /// Parses the conventional colon-separated hex form, e.g.
    /// `00:23:31:df:af:12`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| ParseError::new(format!("malformed MAC address `{s}`")))?;
            *octet = u8::from_str_radix(part, 16)
                .map_err(|_| ParseError::new(format!("malformed MAC address `{s}`")))?;
        }
        if parts.next().is_some() {
            return Err(ParseError::new(format!("malformed MAC address `{s}`")));
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let mac = MacAddr::new([0x00, 0x46, 0x61, 0xaf, 0xfe, 0x23]);
        let text = mac.to_string();
        assert_eq!(text, "00:46:61:af:fe:23");
        assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("00:46:61:af:fe".parse::<MacAddr>().is_err());
        assert!("00:46:61:af:fe:23:99".parse::<MacAddr>().is_err());
        assert!("zz:46:61:af:fe:23".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_index(7).is_multicast());
        assert!(MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn from_index_is_injective_for_small_ids() {
        let all: Vec<MacAddr> = (0..128).map(MacAddr::from_index).collect();
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }

    #[test]
    fn ordering_matches_octet_order() {
        assert!(MacAddr::ZERO < MacAddr::BROADCAST);
        assert!(MacAddr::from_index(1) < MacAddr::from_index(2));
    }
}

//! Well-known byte offsets into an Ethernet/IPv4/TCP frame.
//!
//! The paper's Fault Specification Language identifies packet types by
//! `(offset, length, [mask,] pattern)` tuples over the raw frame. These
//! constants name the offsets its example scripts use (Figure 2 and
//! Figure 6), assuming a 14-byte Ethernet II header and an option-less
//! 20-byte IPv4 header.
//!
//! ```
//! use vw_packet::offsets;
//! assert_eq!(offsets::TCP_SRC_PORT, 34);
//! assert_eq!(offsets::TCP_FLAGS, 47);
//! assert_eq!(offsets::ETHERTYPE, 12);
//! ```

/// Destination MAC address (6 bytes).
pub const ETH_DST: usize = 0;
/// Source MAC address (6 bytes).
pub const ETH_SRC: usize = 6;
/// EtherType field (2 bytes) — the `(12 2 0x9900)` tuple in Figure 6.
pub const ETHERTYPE: usize = 12;
/// First byte of the Ethernet payload; Rether opcode lives here
/// (`(14 2 0x0001)` in Figure 6).
pub const ETH_PAYLOAD: usize = 14;

/// IPv4 version/IHL byte.
pub const IP_VERSION_IHL: usize = 14;
/// IPv4 total-length field (2 bytes).
pub const IP_TOTAL_LEN: usize = 16;
/// IPv4 protocol field (1 byte).
pub const IP_PROTOCOL: usize = 23;
/// IPv4 header checksum (2 bytes).
pub const IP_CHECKSUM: usize = 24;
/// IPv4 source address (4 bytes).
pub const IP_SRC: usize = 26;
/// IPv4 destination address (4 bytes).
pub const IP_DST: usize = 30;

/// TCP source port (2 bytes) — `(34 2 0x6000)` in Figure 2.
pub const TCP_SRC_PORT: usize = 34;
/// TCP destination port (2 bytes) — `(36 2 0x4000)` in Figure 2.
pub const TCP_DST_PORT: usize = 36;
/// TCP sequence number (4 bytes) — `(38 4 SeqNoData)` in Figure 2.
pub const TCP_SEQ: usize = 38;
/// TCP acknowledgment number (4 bytes) — `(42 4 SeqNoAck)` in Figure 2.
pub const TCP_ACK: usize = 42;
/// TCP flags byte — `(47 1 0x10 0x10)` in Figure 2 matches the ACK bit.
pub const TCP_FLAGS: usize = 47;

/// UDP source port (2 bytes).
pub const UDP_SRC_PORT: usize = 34;
/// UDP destination port (2 bytes).
pub const UDP_DST_PORT: usize = 36;
/// UDP length (2 bytes).
pub const UDP_LEN: usize = 38;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ETHERNET_HEADER_LEN, IPV4_HEADER_LEN};

    #[test]
    fn offsets_are_consistent_with_header_lengths() {
        assert_eq!(ETH_PAYLOAD, ETHERNET_HEADER_LEN);
        assert_eq!(TCP_SRC_PORT, ETHERNET_HEADER_LEN + IPV4_HEADER_LEN);
        assert_eq!(TCP_DST_PORT, TCP_SRC_PORT + 2);
        assert_eq!(TCP_SEQ, TCP_SRC_PORT + 4);
        assert_eq!(TCP_ACK, TCP_SRC_PORT + 8);
        assert_eq!(TCP_FLAGS, TCP_SRC_PORT + 13);
        assert_eq!(UDP_SRC_PORT, TCP_SRC_PORT);
    }
}

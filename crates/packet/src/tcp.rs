//! TCP header view, flags, and full-frame builder.

use std::fmt;
use std::net::Ipv4Addr;
use std::ops::{BitOr, BitOrAssign};

use serde::{Deserialize, Serialize};

use crate::checksum;
use crate::ethernet::ETHERNET_HEADER_LEN;
use crate::ipv4::{IpProtocol, Ipv4Builder, Ipv4Header, IPV4_HEADER_LEN};
use crate::{EtherType, EthernetBuilder, Frame, MacAddr, ParseError};

/// Length of an option-less TCP header. The simulated stack never emits TCP
/// options so headers are always 20 bytes, matching the paper's offsets.
pub const TCP_HEADER_LEN: usize = 20;

/// The TCP flag bits (low byte of the flags word).
///
/// A lightweight flag-set type: combine with `|`, test with
/// [`contains`](TcpFlags::contains).
///
/// ```
/// use vw_packet::TcpFlags;
/// let synack = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(synack.contains(TcpFlags::SYN));
/// assert!(synack.contains(TcpFlags::ACK));
/// assert!(!synack.contains(TcpFlags::FIN));
/// assert_eq!(synack.bits(), 0x12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN — sender is finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN — synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST — reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH — push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK — the acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG — the urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Creates a flag set from raw bits.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// The raw flag bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Returns `true` if every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpFlags({self})")
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for (bit, name) in [
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(bit) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Borrowed view of a TCP segment inside a full Ethernet/IPv4 frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader<'a> {
    bytes: &'a [u8],
}

const TCP_OFF: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;

impl<'a> TcpHeader<'a> {
    /// Interprets `frame` as an Ethernet/IPv4/TCP frame.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the frame is not IPv4, the IP protocol is
    /// not TCP, or the buffer is too short.
    pub fn new(frame: &'a [u8]) -> Result<Self, ParseError> {
        let ip = Ipv4Header::new(frame)?;
        if ip.protocol() != IpProtocol::TCP {
            return Err(ParseError::new(format!(
                "IP protocol {} is not TCP",
                ip.protocol()
            )));
        }
        if frame.len() < TCP_OFF + TCP_HEADER_LEN {
            return Err(ParseError::new("frame too short for TCP header"));
        }
        Ok(TcpHeader { bytes: frame })
    }

    fn tcp(&self) -> &'a [u8] {
        &self.bytes[TCP_OFF..]
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.tcp()[0], self.tcp()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.tcp()[2], self.tcp()[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.tcp()[4], self.tcp()[5], self.tcp()[6], self.tcp()[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.tcp()[8], self.tcp()[9], self.tcp()[10], self.tcp()[11]])
    }

    /// Data offset in bytes (always 20 for frames this crate builds).
    pub fn data_offset(&self) -> usize {
        ((self.tcp()[12] >> 4) as usize) * 4
    }

    /// The flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_bits(self.tcp()[13])
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.tcp()[14], self.tcp()[15]])
    }

    /// The checksum field as transmitted.
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.tcp()[16], self.tcp()[17]])
    }

    /// The TCP payload, bounded by the IP total length.
    pub fn payload(&self) -> &'a [u8] {
        let ip = Ipv4Header::new(self.bytes).expect("validated at construction");
        let segment = ip.payload();
        &segment[self.data_offset().min(segment.len())..]
    }

    /// Verifies the TCP checksum over the pseudo-header and segment.
    pub fn verify_checksum(&self) -> bool {
        let ip = Ipv4Header::new(self.bytes).expect("validated at construction");
        checksum::verify_pseudo_header_checksum(
            ip.src(),
            ip.dst(),
            IpProtocol::TCP.value(),
            ip.payload(),
        )
    }
}

/// Builds a complete Ethernet/IPv4/TCP frame with valid checksums.
///
/// ```
/// use std::net::Ipv4Addr;
/// use vw_packet::{MacAddr, TcpBuilder, TcpFlags};
///
/// let frame = TcpBuilder::new()
///     .src_mac(MacAddr::from_index(1))
///     .dst_mac(MacAddr::from_index(2))
///     .src_ip(Ipv4Addr::new(10, 0, 0, 1))
///     .dst_ip(Ipv4Addr::new(10, 0, 0, 2))
///     .src_port(24576)
///     .dst_port(16384)
///     .seq(100)
///     .ack(200)
///     .flags(TcpFlags::ACK | TcpFlags::PSH)
///     .payload(b"hello")
///     .build();
/// let tcp = frame.tcp().unwrap();
/// assert_eq!(tcp.payload(), b"hello");
/// assert!(tcp.verify_checksum());
/// ```
#[derive(Debug, Clone)]
pub struct TcpBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    window: u16,
    ident: u16,
    payload: Vec<u8>,
}

impl Default for TcpBuilder {
    fn default() -> Self {
        TcpBuilder {
            src_mac: MacAddr::ZERO,
            dst_mac: MacAddr::ZERO,
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_ip: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::EMPTY,
            window: 65535,
            ident: 0,
            payload: Vec::new(),
        }
    }
}

impl TcpBuilder {
    /// Creates a builder with all fields zeroed and a 64 KB window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IP address.
    pub fn src_ip(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IP address.
    pub fn dst_ip(mut self, ip: Ipv4Addr) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the source port.
    pub fn src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Sets the destination port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// Sets the sequence number.
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the acknowledgment number.
    pub fn ack(mut self, ack: u32) -> Self {
        self.ack = ack;
        self
    }

    /// Sets the flag bits.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Sets the advertised window.
    pub fn window(mut self, window: u16) -> Self {
        self.window = window;
        self
    }

    /// Sets the IP identification field.
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Assembles the frame, computing IP and TCP checksums.
    pub fn build(&self) -> Frame {
        let mut segment = crate::arena::take_buffer(TCP_HEADER_LEN + self.payload.len());
        segment.extend_from_slice(&self.src_port.to_be_bytes());
        segment.extend_from_slice(&self.dst_port.to_be_bytes());
        segment.extend_from_slice(&self.seq.to_be_bytes());
        segment.extend_from_slice(&self.ack.to_be_bytes());
        segment.push(((TCP_HEADER_LEN / 4) as u8) << 4);
        segment.push(self.flags.bits());
        segment.extend_from_slice(&self.window.to_be_bytes());
        segment.extend_from_slice(&[0, 0]); // checksum placeholder
        segment.extend_from_slice(&[0, 0]); // urgent pointer
        segment.extend_from_slice(&self.payload);
        let sum = checksum::pseudo_header_checksum(
            self.src_ip,
            self.dst_ip,
            IpProtocol::TCP.value(),
            &segment,
        );
        segment[16..18].copy_from_slice(&sum.to_be_bytes());

        let packet = Ipv4Builder::new()
            .src(self.src_ip)
            .dst(self.dst_ip)
            .protocol(IpProtocol::TCP)
            .ident(self.ident)
            .payload_owned(segment)
            .build_packet_take();
        EthernetBuilder::new()
            .src(self.src_mac)
            .dst(self.dst_mac)
            .ethertype(EtherType::IPV4)
            .payload_owned(packet)
            .build_take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offsets;
    use proptest::prelude::*;

    fn sample(payload: &[u8]) -> Frame {
        TcpBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(MacAddr::from_index(2))
            .src_ip(Ipv4Addr::new(192, 168, 1, 1))
            .dst_ip(Ipv4Addr::new(192, 168, 1, 2))
            .src_port(0x6000)
            .dst_port(0x4000)
            .seq(0xDEAD_BEEF)
            .ack(0x1234_5678)
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .window(4096)
            .payload(payload)
            .build()
    }

    #[test]
    fn fields_round_trip() {
        let frame = sample(b"payload");
        let tcp = frame.tcp().unwrap();
        assert_eq!(tcp.src_port(), 0x6000);
        assert_eq!(tcp.dst_port(), 0x4000);
        assert_eq!(tcp.seq(), 0xDEAD_BEEF);
        assert_eq!(tcp.ack(), 0x1234_5678);
        assert_eq!(tcp.window(), 4096);
        assert_eq!(tcp.data_offset(), 20);
        assert!(tcp.flags().contains(TcpFlags::ACK));
        assert!(tcp.flags().contains(TcpFlags::PSH));
        assert!(!tcp.flags().contains(TcpFlags::SYN));
        assert_eq!(tcp.payload(), b"payload");
    }

    #[test]
    fn checksums_valid_and_detect_corruption() {
        let frame = sample(b"x");
        assert!(frame.tcp().unwrap().verify_checksum());
        assert!(frame.ipv4().unwrap().verify_checksum());
        let mut corrupted = frame.clone();
        corrupted.flip_bit(frame.len() - 1, 0);
        assert!(!corrupted.tcp().unwrap().verify_checksum());
    }

    #[test]
    fn paper_offsets_match_fields() {
        // Cross-check the Figure 2 filter offsets against the typed view.
        let frame = sample(&[]);
        assert_eq!(
            frame.read_at(offsets::TCP_SRC_PORT, 2).unwrap(),
            &0x6000u16.to_be_bytes()
        );
        assert_eq!(
            frame.read_at(offsets::TCP_DST_PORT, 2).unwrap(),
            &0x4000u16.to_be_bytes()
        );
        assert_eq!(
            frame.read_at(offsets::TCP_SEQ, 4).unwrap(),
            &0xDEAD_BEEFu32.to_be_bytes()
        );
        assert_eq!(
            frame.read_at(offsets::TCP_ACK, 4).unwrap(),
            &0x1234_5678u32.to_be_bytes()
        );
        let flags = frame.read_at(offsets::TCP_FLAGS, 1).unwrap()[0];
        assert_eq!(flags & 0x10, 0x10); // ACK bit, the (47 1 0x10 0x10) tuple
    }

    #[test]
    fn non_tcp_rejected() {
        let udp_frame = crate::UdpBuilder::new().build();
        assert!(udp_frame.tcp().is_none());
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "none");
        assert_eq!(TcpFlags::FIN.to_string(), "FIN");
    }

    #[test]
    fn flags_or_assign() {
        let mut f = TcpFlags::SYN;
        f |= TcpFlags::ACK;
        assert_eq!(f, TcpFlags::SYN | TcpFlags::ACK);
    }

    proptest! {
        #[test]
        fn arbitrary_segments_round_trip(
            src_port in any::<u16>(),
            dst_port in any::<u16>(),
            seq in any::<u32>(),
            ack in any::<u32>(),
            flag_bits in 0u8..64,
            payload in proptest::collection::vec(any::<u8>(), 0..600),
        ) {
            let frame = TcpBuilder::new()
                .src_ip(Ipv4Addr::new(10, 1, 2, 3))
                .dst_ip(Ipv4Addr::new(10, 4, 5, 6))
                .src_port(src_port)
                .dst_port(dst_port)
                .seq(seq)
                .ack(ack)
                .flags(TcpFlags::from_bits(flag_bits))
                .payload(&payload)
                .build();
            let tcp = frame.tcp().unwrap();
            prop_assert_eq!(tcp.src_port(), src_port);
            prop_assert_eq!(tcp.dst_port(), dst_port);
            prop_assert_eq!(tcp.seq(), seq);
            prop_assert_eq!(tcp.ack(), ack);
            prop_assert_eq!(tcp.flags().bits(), flag_bits);
            prop_assert_eq!(tcp.payload(), &payload[..]);
            prop_assert!(tcp.verify_checksum());
        }
    }
}

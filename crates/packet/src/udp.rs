//! UDP header view and full-frame builder.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::ethernet::ETHERNET_HEADER_LEN;
use crate::ipv4::{IpProtocol, Ipv4Builder, Ipv4Header, IPV4_HEADER_LEN};
use crate::{EtherType, EthernetBuilder, Frame, MacAddr, ParseError};

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

const UDP_OFF: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;

/// Borrowed view of a UDP datagram inside a full Ethernet/IPv4 frame.
///
/// ```
/// use std::net::Ipv4Addr;
/// use vw_packet::UdpBuilder;
///
/// let frame = UdpBuilder::new()
///     .src_ip(Ipv4Addr::new(10, 0, 0, 1))
///     .dst_ip(Ipv4Addr::new(10, 0, 0, 2))
///     .src_port(9000)
///     .dst_port(7)
///     .payload(b"ping")
///     .build();
/// let udp = frame.udp().unwrap();
/// assert_eq!(udp.dst_port(), 7);
/// assert_eq!(udp.payload(), b"ping");
/// assert!(udp.verify_checksum());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader<'a> {
    bytes: &'a [u8],
}

impl<'a> UdpHeader<'a> {
    /// Interprets `frame` as an Ethernet/IPv4/UDP frame.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the frame is not IPv4/UDP or is too short.
    pub fn new(frame: &'a [u8]) -> Result<Self, ParseError> {
        let ip = Ipv4Header::new(frame)?;
        if ip.protocol() != IpProtocol::UDP {
            return Err(ParseError::new(format!(
                "IP protocol {} is not UDP",
                ip.protocol()
            )));
        }
        if frame.len() < UDP_OFF + UDP_HEADER_LEN {
            return Err(ParseError::new("frame too short for UDP header"));
        }
        Ok(UdpHeader { bytes: frame })
    }

    fn udp(&self) -> &'a [u8] {
        &self.bytes[UDP_OFF..]
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.udp()[0], self.udp()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.udp()[2], self.udp()[3]])
    }

    /// The UDP length field (header + payload).
    pub fn length(&self) -> u16 {
        u16::from_be_bytes([self.udp()[4], self.udp()[5]])
    }

    /// The checksum field as transmitted.
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.udp()[6], self.udp()[7]])
    }

    /// The datagram payload, bounded by the UDP length field.
    pub fn payload(&self) -> &'a [u8] {
        let end = (UDP_OFF + self.length() as usize).min(self.bytes.len());
        &self.bytes[(UDP_OFF + UDP_HEADER_LEN).min(end)..end]
    }

    /// Verifies the UDP checksum (a zero field means "not computed" and
    /// verifies trivially, per RFC 768).
    pub fn verify_checksum(&self) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let ip = Ipv4Header::new(self.bytes).expect("validated at construction");
        checksum::verify_pseudo_header_checksum(
            ip.src(),
            ip.dst(),
            IpProtocol::UDP.value(),
            ip.payload(),
        )
    }
}

/// Builds a complete Ethernet/IPv4/UDP frame with valid checksums.
#[derive(Debug, Clone)]
pub struct UdpBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ident: u16,
    payload: Vec<u8>,
}

impl Default for UdpBuilder {
    fn default() -> Self {
        UdpBuilder {
            src_mac: MacAddr::ZERO,
            dst_mac: MacAddr::ZERO,
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_ip: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            ident: 0,
            payload: Vec::new(),
        }
    }
}

impl UdpBuilder {
    /// Creates a builder with all fields zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IP address.
    pub fn src_ip(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IP address.
    pub fn dst_ip(mut self, ip: Ipv4Addr) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the source port.
    pub fn src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Sets the destination port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// Sets the IP identification field.
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Assembles the frame, computing IP and UDP checksums.
    pub fn build(&self) -> Frame {
        let udp_len = (UDP_HEADER_LEN + self.payload.len()) as u16;
        let mut datagram = crate::arena::take_buffer(udp_len as usize);
        datagram.extend_from_slice(&self.src_port.to_be_bytes());
        datagram.extend_from_slice(&self.dst_port.to_be_bytes());
        datagram.extend_from_slice(&udp_len.to_be_bytes());
        datagram.extend_from_slice(&[0, 0]); // checksum placeholder
        datagram.extend_from_slice(&self.payload);
        let mut sum = checksum::pseudo_header_checksum(
            self.src_ip,
            self.dst_ip,
            IpProtocol::UDP.value(),
            &datagram,
        );
        if sum == 0 {
            sum = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        datagram[6..8].copy_from_slice(&sum.to_be_bytes());

        let packet = Ipv4Builder::new()
            .src(self.src_ip)
            .dst(self.dst_ip)
            .protocol(IpProtocol::UDP)
            .ident(self.ident)
            .payload_owned(datagram)
            .build_packet_take();
        EthernetBuilder::new()
            .src(self.src_mac)
            .dst(self.dst_mac)
            .ethertype(EtherType::IPV4)
            .payload_owned(packet)
            .build_take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fields_round_trip() {
        let frame = UdpBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(MacAddr::from_index(2))
            .src_ip(Ipv4Addr::new(10, 0, 0, 1))
            .dst_ip(Ipv4Addr::new(10, 0, 0, 2))
            .src_port(5353)
            .dst_port(7)
            .payload(b"echo me")
            .build();
        let udp = frame.udp().unwrap();
        assert_eq!(udp.src_port(), 5353);
        assert_eq!(udp.dst_port(), 7);
        assert_eq!(udp.length(), 15);
        assert_eq!(udp.payload(), b"echo me");
        assert!(udp.verify_checksum());
        assert!(frame.ipv4().unwrap().verify_checksum());
    }

    #[test]
    fn corruption_detected() {
        let frame = UdpBuilder::new()
            .src_ip(Ipv4Addr::new(10, 0, 0, 1))
            .dst_ip(Ipv4Addr::new(10, 0, 0, 2))
            .payload(b"data")
            .build();
        let mut bad = frame.clone();
        bad.flip_bit(frame.len() - 2, 4);
        assert!(!bad.udp().unwrap().verify_checksum());
    }

    #[test]
    fn zero_checksum_field_accepted() {
        let frame = UdpBuilder::new().payload(b"x").build();
        let mut bytes = frame.into_bytes();
        bytes[UDP_OFF + 6] = 0;
        bytes[UDP_OFF + 7] = 0;
        let frame = Frame::from_bytes(bytes).unwrap();
        assert!(frame.udp().unwrap().verify_checksum());
    }

    #[test]
    fn tcp_frames_rejected() {
        let frame = crate::TcpBuilder::new().build();
        assert!(frame.udp().is_none());
    }

    #[test]
    fn empty_payload() {
        let frame = UdpBuilder::new().build();
        let udp = frame.udp().unwrap();
        assert_eq!(udp.length(), 8);
        assert!(udp.payload().is_empty());
    }

    proptest! {
        #[test]
        fn arbitrary_datagrams_round_trip(
            src_port in any::<u16>(),
            dst_port in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..600),
        ) {
            let frame = UdpBuilder::new()
                .src_ip(Ipv4Addr::new(172, 16, 0, 1))
                .dst_ip(Ipv4Addr::new(172, 16, 0, 2))
                .src_port(src_port)
                .dst_port(dst_port)
                .payload(&payload)
                .build();
            let udp = frame.udp().unwrap();
            prop_assert_eq!(udp.src_port(), src_port);
            prop_assert_eq!(udp.dst_port(), dst_port);
            prop_assert_eq!(udp.payload(), &payload[..]);
            prop_assert!(udp.verify_checksum());
        }
    }
}

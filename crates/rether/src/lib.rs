//! Rether — a software-based real-time Ethernet token-passing protocol,
//! reimplemented as the second "protocol under test" of the VirtualWire
//! reproduction (paper Section 6.2).
//!
//! Rether regulates access to a shared medium with a circulating control
//! token: a node may transmit data only while holding the token. Because a
//! node or link failure can leave the ring with no token (or, transiently,
//! more than one), the protocol carries "elaborate mechanisms to keep a
//! single token in circulation in spite of packet drops and node failures"
//! (paper, Section 1):
//!
//! * **token acknowledgment** — each token pass is acknowledged; a missing
//!   ack is retransmitted up to [`RetherConfig::token_send_limit`] times
//!   (3, the number the Figure 6 analysis script counts),
//! * **ring reconstruction** — a successor that never acknowledges is
//!   declared dead and removed; the updated membership travels inside the
//!   token itself,
//! * **token regeneration** — after prolonged silence a node regenerates
//!   the token under a fresh generation number; stale-generation tokens
//!   are discarded, restoring the single-token invariant,
//! * **bandwidth reservation** — real-time senders reserve per-cycle bytes
//!   ([`RetherNode::reserve_rt`]) on top of the best-effort quantum.
//!
//! The layer is a [`Hook`](vw_netsim::Hook): outbound data frames are
//! queued and released only while holding the token, exactly where the
//! kernel implementation interposed between the Ethernet driver and IP.
//!
//! # Example
//!
//! ```
//! use vw_netsim::{LinkConfig, SimDuration, World};
//! use vw_rether::{RetherConfig, RetherNode};
//!
//! let mut world = World::new(3);
//! let hub = world.add_hub("bus", 4);
//! let nodes: Vec<_> = (1..=3).map(|i| world.add_host(&format!("node{i}"))).collect();
//! let ring: Vec<_> = nodes.iter().map(|&n| world.host_mac(n)).collect();
//! let mut hooks = Vec::new();
//! for &n in &nodes {
//!     world.connect(n, hub, LinkConfig::ethernet_10m());
//!     let node = RetherNode::new(RetherConfig::new(ring.clone()), world.host_mac(n));
//!     hooks.push(world.add_hook(n, Box::new(node)));
//! }
//! world.run_for(SimDuration::from_millis(200));
//! let n0 = world.hook::<RetherNode>(nodes[0], hooks[0]).unwrap();
//! assert!(n0.stats().tokens_received > 10, "token must be circulating");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
pub mod wire;

pub use node::{RetherConfig, RetherNode, RetherStats};

//! The per-host Rether layer.
//!
//! Rether lives where the real implementation lived: "as a layer between
//! the Ethernet driver and the IP stack" (paper, Section 1) — here, a
//! [`Hook`] in the simulator's interposition chain. Outbound data frames
//! are held in a queue and released only while the node holds the token;
//! the layer generates and consumes the token/token-ack control traffic
//! itself.

use std::collections::VecDeque;

use vw_netsim::{Context, Hook, SimDuration, SimTime, TimerId, Verdict};
use vw_obs::ProtoAspect;
use vw_packet::{EtherType, Frame, MacAddr};

use crate::wire::{self, RetherMessage, Token};

const TIMER_ACK: u64 = 1;
const TIMER_REGEN: u64 = 2;
const TIMER_HOLD: u64 = 3;

/// Configuration for a Rether node.
#[derive(Debug, Clone)]
pub struct RetherConfig {
    /// Initial ring membership in rotation order (every node must use the
    /// same list).
    pub ring: Vec<MacAddr>,
    /// How long to wait for a token acknowledgment before retransmitting.
    pub token_ack_timeout: SimDuration,
    /// Total token transmissions to a successor before declaring it dead
    /// (the paper's Figure 6 scenario checks for exactly 3).
    pub token_send_limit: u32,
    /// Base inactivity period before token regeneration; the effective
    /// watchdog is `regen_base × (rank + 2)` so lower-ranked nodes fire
    /// first.
    pub regen_base: SimDuration,
    /// How long an idle holder keeps the token before passing it on
    /// (throttles rotation speed when nobody has data).
    pub idle_hold: SimDuration,
    /// Best-effort (non-real-time) bytes a node may transmit per hold.
    pub nrt_quantum_bytes: u32,
    /// Upper bound on queued outbound data frames.
    pub queue_cap: usize,
}

impl RetherConfig {
    /// A sensible default configuration for the given ring.
    pub fn new(ring: Vec<MacAddr>) -> Self {
        RetherConfig {
            ring,
            token_ack_timeout: SimDuration::from_millis(5),
            token_send_limit: 3,
            regen_base: SimDuration::from_millis(250),
            idle_hold: SimDuration::from_millis(1),
            nrt_quantum_bytes: 16 * 1024,
            queue_cap: 1024,
        }
    }
}

/// Counters exposed for tests and analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetherStats {
    /// Tokens received (and acknowledged).
    pub tokens_received: u64,
    /// Tokens passed to a successor (first transmissions).
    pub tokens_passed: u64,
    /// Token retransmissions after a missing acknowledgment.
    pub token_retransmissions: u64,
    /// Token acknowledgments sent.
    pub acks_sent: u64,
    /// Successors declared dead (ring reconstructions initiated).
    pub reconstructions: u64,
    /// Tokens regenerated after ring silence.
    pub regenerations: u64,
    /// Stale or duplicate tokens discarded.
    pub stale_tokens_dropped: u64,
    /// Data frames released while holding the token.
    pub data_frames_released: u64,
    /// Data frames dropped because the hold queue overflowed.
    pub queue_drops: u64,
}

#[derive(Debug)]
enum TokenState {
    /// Not holding the token.
    Idle,
    /// Holding; the hold timer will trigger the pass.
    Holding { timer: Option<TimerId> },
    /// Token passed; awaiting the acknowledgment.
    AwaitingAck {
        dst: MacAddr,
        sends: u32,
        timer: TimerId,
    },
}

/// One node's Rether layer, installed as a hook between the protocol stack
/// and the NIC (stack-ward of any fault injection engine, so injected
/// token faults are visible to it the same way kernel Rether saw faults on
/// the real wire).
#[derive(Debug)]
pub struct RetherNode {
    cfg: RetherConfig,
    mac: MacAddr,
    ring: Vec<MacAddr>,
    generation: u32,
    cycle: u32,
    state: TokenState,
    pending: VecDeque<Frame>,
    rt_reservation_bytes: u32,
    /// Unused transmission budget in the current hold.
    hold_budget_left: u32,
    last_token_seen: SimTime,
    stats: RetherStats,
    started: bool,
    /// Timestamped token-protocol state changes, in occurrence order —
    /// the feed for the Rether conformance model in `vw-analysis`.
    state_log: Vec<(SimTime, ProtoAspect, u64)>,
}

impl RetherNode {
    /// Creates the layer for the host with address `mac`.
    ///
    /// # Panics
    ///
    /// Panics if `mac` is not a member of `cfg.ring` or the ring is empty.
    pub fn new(cfg: RetherConfig, mac: MacAddr) -> Self {
        assert!(!cfg.ring.is_empty(), "ring must not be empty");
        assert!(cfg.ring.contains(&mac), "this node must be a ring member");
        let ring = cfg.ring.clone();
        RetherNode {
            cfg,
            mac,
            ring,
            generation: 0,
            cycle: 0,
            state: TokenState::Idle,
            pending: VecDeque::new(),
            rt_reservation_bytes: 0,
            hold_budget_left: 0,
            last_token_seen: SimTime::ZERO,
            stats: RetherStats::default(),
            started: false,
            state_log: Vec::new(),
        }
    }

    /// Reserves real-time bandwidth: this node may transmit `bytes` per
    /// token hold in addition to the best-effort quantum.
    pub fn reserve_rt(&mut self, bytes: u32) {
        self.rt_reservation_bytes = bytes;
    }

    /// Current counters.
    pub fn stats(&self) -> RetherStats {
        self.stats
    }

    /// Timestamped token-protocol state changes observed so far, in
    /// occurrence order.
    pub fn state_log(&self) -> &[(SimTime, ProtoAspect, u64)] {
        &self.state_log
    }

    /// The node's current view of the ring.
    pub fn ring(&self) -> &[MacAddr] {
        &self.ring
    }

    /// The node's current token generation.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// `true` while this node holds the token.
    pub fn is_holding(&self) -> bool {
        matches!(self.state, TokenState::Holding { .. })
    }

    /// Frames queued awaiting the token.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    fn rank(&self) -> usize {
        self.ring.iter().position(|m| *m == self.mac).unwrap_or(0)
    }

    fn successor(&self) -> Option<MacAddr> {
        if self.ring.len() <= 1 {
            return None;
        }
        let rank = self.rank();
        Some(self.ring[(rank + 1) % self.ring.len()])
    }

    fn regen_timeout(&self) -> SimDuration {
        self.cfg.regen_base * (self.rank() as u64 + 2)
    }

    fn hold_budget(&self) -> u32 {
        self.rt_reservation_bytes + self.cfg.nrt_quantum_bytes
    }

    /// Becomes the token holder: releases queued data within the per-hold
    /// budget, then either passes immediately (data was waiting) or
    /// lingers for `idle_hold`. Whatever budget remains is available to
    /// frames arriving from the stack while the token is still held.
    fn hold_token(&mut self, ctx: &mut Context<'_>) {
        self.hold_budget_left = self.hold_budget();
        let mut released = false;
        while let Some(front_len) = self.pending.front().map(|f| f.len() as u32) {
            if front_len > self.hold_budget_left && released {
                break; // budget exhausted for this hold
            }
            let frame = self.pending.pop_front().expect("nonempty");
            self.hold_budget_left = self.hold_budget_left.saturating_sub(front_len);
            self.stats.data_frames_released += 1;
            released = true;
            ctx.send(frame);
        }
        if released {
            self.pass_token(ctx);
        } else {
            let timer = ctx.set_timer(self.cfg.idle_hold, TIMER_HOLD);
            self.state = TokenState::Holding { timer: Some(timer) };
        }
    }

    fn pass_token(&mut self, ctx: &mut Context<'_>) {
        let Some(dst) = self.successor() else {
            // Sole survivor: keep holding.
            let timer = ctx.set_timer(self.cfg.idle_hold, TIMER_HOLD);
            self.state = TokenState::Holding { timer: Some(timer) };
            return;
        };
        if self.rank() == 0 {
            self.cycle = self.cycle.wrapping_add(1);
        }
        ctx.send(wire::build_token_parts(
            self.mac,
            dst,
            self.generation,
            self.cycle,
            &self.ring,
        ));
        self.stats.tokens_passed += 1;
        self.state_log.push((
            ctx.now(),
            ProtoAspect::TokenPassed,
            u64::from(self.generation),
        ));
        let timer = ctx.set_timer(self.cfg.token_ack_timeout, TIMER_ACK);
        self.state = TokenState::AwaitingAck {
            dst,
            sends: 1,
            timer,
        };
    }

    fn on_token(&mut self, ctx: &mut Context<'_>, from: MacAddr, token: Token) {
        self.last_token_seen = ctx.now();
        if token.generation < self.generation {
            self.stats.stale_tokens_dropped += 1;
            return;
        }
        if token.generation == self.generation && !matches!(self.state, TokenState::Idle) {
            // Duplicate token of the current generation while we already
            // hold (or just passed) one: kill it.
            self.stats.stale_tokens_dropped += 1;
            return;
        }
        // Adopt the token's view of the world.
        self.generation = token.generation;
        self.cycle = token.cycle;
        if token.ring.contains(&self.mac) {
            self.ring = token.ring;
        }
        // Cancel any pending ack wait (a newer token supersedes it).
        if let TokenState::AwaitingAck { timer, .. } = &self.state {
            ctx.cancel_timer(*timer);
        }
        if let TokenState::Holding { timer: Some(t) } = &self.state {
            ctx.cancel_timer(*t);
        }
        self.stats.tokens_received += 1;
        self.state_log.push((
            ctx.now(),
            ProtoAspect::TokenReceived,
            u64::from(self.generation),
        ));
        self.stats.acks_sent += 1;
        ctx.send(wire::build_token_ack(self.mac, from, self.generation));
        self.hold_token(ctx);
    }

    fn on_token_ack(&mut self, ctx: &mut Context<'_>, generation: u32) {
        self.last_token_seen = ctx.now();
        if let TokenState::AwaitingAck { timer, .. } = &self.state {
            if generation == self.generation {
                ctx.cancel_timer(*timer);
                self.state = TokenState::Idle;
                self.state_log
                    .push((ctx.now(), ProtoAspect::TokenAcked, u64::from(generation)));
            }
        }
    }

    fn on_ack_timeout(&mut self, ctx: &mut Context<'_>) {
        let TokenState::AwaitingAck { dst, sends, .. } = self.state else {
            return;
        };
        if sends < self.cfg.token_send_limit {
            // Retransmit the token.
            ctx.send(wire::build_token_parts(
                self.mac,
                dst,
                self.generation,
                self.cycle,
                &self.ring,
            ));
            self.stats.token_retransmissions += 1;
            self.state_log.push((
                ctx.now(),
                ProtoAspect::TokenRetransmit,
                u64::from(sends + 1),
            ));
            let timer = ctx.set_timer(self.cfg.token_ack_timeout, TIMER_ACK);
            self.state = TokenState::AwaitingAck {
                dst,
                sends: sends + 1,
                timer,
            };
        } else {
            // Successor is dead: reconstruct the ring without it and pass
            // to the next survivor.
            self.stats.reconstructions += 1;
            self.ring.retain(|m| *m != dst);
            self.state_log.push((
                ctx.now(),
                ProtoAspect::RingReconfigured,
                self.ring.len() as u64,
            ));
            ctx.trace_note(format!(
                "rether: {} declared {dst} dead; ring now {} nodes",
                self.mac,
                self.ring.len()
            ));
            self.state = TokenState::Idle;
            self.pass_token(ctx);
        }
    }

    fn on_regen_check(&mut self, ctx: &mut Context<'_>) {
        let quiet = ctx.now().saturating_since(self.last_token_seen);
        if matches!(self.state, TokenState::Idle) && quiet >= self.regen_timeout() {
            self.generation += 1;
            self.stats.regenerations += 1;
            self.state_log.push((
                ctx.now(),
                ProtoAspect::TokenRegenerated,
                u64::from(self.generation),
            ));
            self.last_token_seen = ctx.now();
            ctx.trace_note(format!(
                "rether: {} regenerated token (generation {})",
                self.mac, self.generation
            ));
            self.hold_token(ctx);
        }
        ctx.set_timer(self.regen_timeout(), TIMER_REGEN);
    }
}

impl Hook for RetherNode {
    fn name(&self) -> &str {
        "rether"
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.started {
            return;
        }
        self.started = true;
        self.last_token_seen = ctx.now();
        ctx.set_timer(self.regen_timeout(), TIMER_REGEN);
        // The first ring member originates the token.
        if self.rank() == 0 {
            self.hold_token(ctx);
        }
    }

    fn on_outbound(&mut self, _ctx: &mut Context<'_>, frame: Frame) -> Verdict {
        if frame.ethertype() == EtherType::RETHER {
            // Our own control traffic (emitted via ctx.send) never re-enters
            // this hook; anything else claiming Rether is passed through.
            return Verdict::Accept(frame);
        }
        if matches!(self.state, TokenState::Holding { .. })
            && frame.len() as u32 <= self.hold_budget_left
        {
            // Holder may transmit immediately — within its budget.
            self.hold_budget_left -= frame.len() as u32;
            self.stats.data_frames_released += 1;
            return Verdict::Accept(frame);
        }
        if self.pending.len() >= self.cfg.queue_cap {
            self.stats.queue_drops += 1;
            return Verdict::Consume;
        }
        self.pending.push_back(frame);
        Verdict::Replace(Vec::new())
    }

    fn on_inbound(&mut self, ctx: &mut Context<'_>, frame: Frame) -> Verdict {
        if frame.ethertype() != EtherType::RETHER {
            return Verdict::Accept(frame);
        }
        match wire::parse(&frame) {
            Ok(RetherMessage::Token(token)) => {
                self.on_token(ctx, frame.src(), token);
                Verdict::Consume
            }
            Ok(RetherMessage::TokenAck { generation }) => {
                self.on_token_ack(ctx, generation);
                Verdict::Consume
            }
            Err(_) => Verdict::Consume, // malformed control frame
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_ACK => self.on_ack_timeout(ctx),
            TIMER_REGEN => self.on_regen_check(ctx),
            TIMER_HOLD => {
                if matches!(self.state, TokenState::Holding { .. }) {
                    self.pass_token(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Vec<MacAddr> {
        (1..=n).map(MacAddr::from_index).collect()
    }

    #[test]
    fn construction_validates_membership() {
        let cfg = RetherConfig::new(ring(4));
        let node = RetherNode::new(cfg, MacAddr::from_index(2));
        assert_eq!(node.rank(), 1);
        assert_eq!(node.successor(), Some(MacAddr::from_index(3)));
        assert_eq!(node.ring().len(), 4);
    }

    #[test]
    #[should_panic(expected = "ring member")]
    fn non_member_rejected() {
        let cfg = RetherConfig::new(ring(4));
        let _ = RetherNode::new(cfg, MacAddr::from_index(9));
    }

    #[test]
    fn successor_wraps_around() {
        let cfg = RetherConfig::new(ring(3));
        let node = RetherNode::new(cfg, MacAddr::from_index(3));
        assert_eq!(node.successor(), Some(MacAddr::from_index(1)));
    }

    #[test]
    fn sole_member_has_no_successor() {
        let cfg = RetherConfig::new(ring(1));
        let node = RetherNode::new(cfg, MacAddr::from_index(1));
        assert_eq!(node.successor(), None);
    }

    #[test]
    fn regen_timeout_scales_with_rank() {
        let cfg = RetherConfig::new(ring(4));
        let first = RetherNode::new(cfg.clone(), MacAddr::from_index(1));
        let last = RetherNode::new(cfg, MacAddr::from_index(4));
        assert!(first.regen_timeout() < last.regen_timeout());
    }

    #[test]
    fn hold_budget_includes_reservation() {
        let cfg = RetherConfig::new(ring(2));
        let mut node = RetherNode::new(cfg, MacAddr::from_index(1));
        let base = node.hold_budget();
        node.reserve_rt(5000);
        assert_eq!(node.hold_budget(), base + 5000);
    }
}

//! Rether control-frame wire format.
//!
//! Rether control packets are raw Ethernet frames with protocol identifier
//! `0x9900` (the value the paper's Figure 6 filter table matches at offset
//! 12) and a 16-bit opcode at offset 14: `0x0001` for the token and
//! `0x0010` for the token acknowledgment — again exactly the Figure 6
//! patterns.
//!
//! The token additionally carries a generation number (to kill stale tokens
//! after a regeneration), a cycle counter, and the current ring membership,
//! so that a ring reconstructed after a node failure propagates to every
//! surviving member with the token itself.

use vw_packet::{EtherType, EthernetBuilder, Frame, MacAddr, ParseError};

/// Opcode of a token frame (`(14 2 0x0001)` in Figure 6).
pub const OPCODE_TOKEN: u16 = 0x0001;
/// Opcode of a token acknowledgment (`(14 2 0x0010)` in Figure 6).
pub const OPCODE_TOKEN_ACK: u16 = 0x0010;

/// The circulating token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Regeneration generation: tokens older than a node's view are dead.
    pub generation: u32,
    /// Completed rotations (incremented by the ring's first member).
    pub cycle: u32,
    /// Current ring membership in rotation order.
    pub ring: Vec<MacAddr>,
}

/// Builds a token frame from `src` to `dst`.
pub fn build_token(src: MacAddr, dst: MacAddr, token: &Token) -> Frame {
    build_token_parts(src, dst, token.generation, token.cycle, &token.ring)
}

/// Builds a token frame without requiring an assembled [`Token`], so a
/// sender holding the ring by reference need not clone it first.
pub fn build_token_parts(
    src: MacAddr,
    dst: MacAddr,
    generation: u32,
    cycle: u32,
    ring: &[MacAddr],
) -> Frame {
    let mut payload = vw_packet::arena::take_buffer(2 + 4 + 4 + 1 + ring.len() * 6);
    payload.extend_from_slice(&OPCODE_TOKEN.to_be_bytes());
    payload.extend_from_slice(&generation.to_be_bytes());
    payload.extend_from_slice(&cycle.to_be_bytes());
    payload.push(ring.len() as u8);
    for mac in ring {
        payload.extend_from_slice(&mac.octets());
    }
    EthernetBuilder::new()
        .src(src)
        .dst(dst)
        .ethertype(EtherType::RETHER)
        .payload_owned(payload)
        .build_take()
}

/// Builds a token acknowledgment from `src` to `dst` echoing `generation`.
pub fn build_token_ack(src: MacAddr, dst: MacAddr, generation: u32) -> Frame {
    let mut payload = vw_packet::arena::take_buffer(6);
    payload.extend_from_slice(&OPCODE_TOKEN_ACK.to_be_bytes());
    payload.extend_from_slice(&generation.to_be_bytes());
    EthernetBuilder::new()
        .src(src)
        .dst(dst)
        .ethertype(EtherType::RETHER)
        .payload_owned(payload)
        .build_take()
}

/// A parsed Rether control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetherMessage {
    /// The token, with its state.
    Token(Token),
    /// An acknowledgment echoing the token generation.
    TokenAck {
        /// Echoed generation number.
        generation: u32,
    },
}

/// Parses a Rether control frame.
///
/// # Errors
///
/// Returns [`ParseError`] if the frame is not Rether, is truncated, or has
/// an unknown opcode.
pub fn parse(frame: &Frame) -> Result<RetherMessage, ParseError> {
    if frame.ethertype() != EtherType::RETHER {
        return Err(ParseError::new("not a Rether frame"));
    }
    let p = frame.payload();
    if p.len() < 2 {
        return Err(ParseError::new("Rether frame truncated"));
    }
    let opcode = u16::from_be_bytes([p[0], p[1]]);
    match opcode {
        OPCODE_TOKEN => {
            if p.len() < 11 {
                return Err(ParseError::new("token frame truncated"));
            }
            let generation = u32::from_be_bytes([p[2], p[3], p[4], p[5]]);
            let cycle = u32::from_be_bytes([p[6], p[7], p[8], p[9]]);
            let count = p[10] as usize;
            if p.len() < 11 + count * 6 {
                return Err(ParseError::new("token ring list truncated"));
            }
            let ring = (0..count)
                .map(|i| {
                    let mut o = [0u8; 6];
                    o.copy_from_slice(&p[11 + i * 6..11 + (i + 1) * 6]);
                    MacAddr::new(o)
                })
                .collect();
            Ok(RetherMessage::Token(Token {
                generation,
                cycle,
                ring,
            }))
        }
        OPCODE_TOKEN_ACK => {
            if p.len() < 6 {
                return Err(ParseError::new("token-ack frame truncated"));
            }
            let generation = u32::from_be_bytes([p[2], p[3], p[4], p[5]]);
            Ok(RetherMessage::TokenAck { generation })
        }
        other => Err(ParseError::new(format!(
            "unknown Rether opcode 0x{other:04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_packet::offsets;

    fn macs(n: u32) -> Vec<MacAddr> {
        (1..=n).map(MacAddr::from_index).collect()
    }

    #[test]
    fn token_round_trip() {
        let token = Token {
            generation: 3,
            cycle: 1042,
            ring: macs(4),
        };
        let frame = build_token(MacAddr::from_index(1), MacAddr::from_index(2), &token);
        assert_eq!(frame.ethertype(), EtherType::RETHER);
        match parse(&frame).unwrap() {
            RetherMessage::Token(t) => assert_eq!(t, token),
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn token_ack_round_trip() {
        let frame = build_token_ack(MacAddr::from_index(2), MacAddr::from_index(1), 7);
        match parse(&frame).unwrap() {
            RetherMessage::TokenAck { generation } => assert_eq!(generation, 7),
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn figure6_filter_offsets_match() {
        // The Figure 6 filter table matches (12 2 0x9900) and (14 2 opcode).
        let token = build_token(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &Token {
                generation: 0,
                cycle: 0,
                ring: macs(4),
            },
        );
        assert_eq!(token.read_at(offsets::ETHERTYPE, 2).unwrap(), &[0x99, 0x00]);
        assert_eq!(token.read_at(14, 2).unwrap(), &[0x00, 0x01]);
        let ack = build_token_ack(MacAddr::from_index(2), MacAddr::from_index(1), 0);
        assert_eq!(ack.read_at(offsets::ETHERTYPE, 2).unwrap(), &[0x99, 0x00]);
        assert_eq!(ack.read_at(14, 2).unwrap(), &[0x00, 0x10]);
    }

    #[test]
    fn garbage_rejected() {
        let not_rether = EthernetBuilder::new().payload(&[0, 0]).build();
        assert!(parse(&not_rether).is_err());
        let bad_opcode = EthernetBuilder::new()
            .ethertype(EtherType::RETHER)
            .payload(&[0xBE, 0xEF])
            .build();
        assert!(parse(&bad_opcode).is_err());
        let truncated_token = EthernetBuilder::new()
            .ethertype(EtherType::RETHER)
            .payload(&[0x00, 0x01, 0x00])
            .build();
        assert!(parse(&truncated_token).is_err());
        // Ring list shorter than its declared count.
        let mut payload = vec![0x00, 0x01];
        payload.extend_from_slice(&0u32.to_be_bytes());
        payload.extend_from_slice(&0u32.to_be_bytes());
        payload.push(4); // claims 4 members, provides none
        let bad_ring = EthernetBuilder::new()
            .ethertype(EtherType::RETHER)
            .payload_owned(payload)
            .build();
        assert!(parse(&bad_ring).is_err());
    }

    #[test]
    fn empty_ring_token_is_legal() {
        let token = Token {
            generation: 1,
            cycle: 0,
            ring: Vec::new(),
        };
        let frame = build_token(MacAddr::from_index(1), MacAddr::from_index(2), &token);
        assert_eq!(parse(&frame).unwrap(), RetherMessage::Token(token));
    }
}

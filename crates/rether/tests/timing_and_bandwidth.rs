//! Rether timing properties: rotation-time bounds, the real-time
//! reservation's effect on per-cycle delivery, and fairness between RT and
//! best-effort traffic sharing the ring.

use vw_netsim::{
    Binding, Context, DeviceId, HookId, LinkConfig, Protocol, SimDuration, SimTime, World,
};
use vw_packet::{EtherType, Frame, UdpBuilder};
use vw_rether::{RetherConfig, RetherNode};

/// Records arrival timestamps of UDP datagrams by destination port.
#[derive(Default)]
struct ArrivalLog {
    arrivals: Vec<(u16, SimTime)>,
}

impl Protocol for ArrivalLog {
    fn name(&self) -> &str {
        "arrival-log"
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: Frame) {
        if let Some(udp) = frame.udp() {
            self.arrivals.push((udp.dst_port(), ctx.now()));
        }
    }
}

struct Ring {
    world: World,
    nodes: Vec<DeviceId>,
    hooks: Vec<HookId>,
}

fn ring(seed: u64, n: u32, cfg_fn: impl Fn(usize, RetherConfig) -> RetherConfig) -> Ring {
    let mut world = World::new(seed);
    let hub = world.add_hub("bus", n as usize + 1);
    let nodes: Vec<DeviceId> = (1..=n)
        .map(|i| world.add_host(&format!("node{i}")))
        .collect();
    let macs: Vec<_> = nodes.iter().map(|&id| world.host_mac(id)).collect();
    let mut hooks = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        world.connect(node, hub, LinkConfig::ethernet_10m());
        let cfg = cfg_fn(i, RetherConfig::new(macs.clone()));
        hooks.push(world.add_hook(node, Box::new(RetherNode::new(cfg, macs[i]))));
    }
    Ring {
        world,
        nodes,
        hooks,
    }
}

fn udp_burst(world: &mut World, from: DeviceId, to: DeviceId, port: u16, frames: u32, len: usize) {
    for i in 0..frames {
        let f = UdpBuilder::new()
            .src_mac(world.host_mac(from))
            .dst_mac(world.host_mac(to))
            .src_ip(world.host_ip(from))
            .dst_ip(world.host_ip(to))
            .src_port(i as u16)
            .dst_port(port)
            .payload(&vec![0u8; len])
            .build();
        world.inject_from_stack(from, f);
    }
}

#[test]
fn idle_rotation_time_is_bounded_by_hold_times() {
    // 4 idle nodes, 1 ms idle hold each: a full rotation takes ~4 ms plus
    // wire time. Token receipts per second ≈ 250 per node.
    let mut r = ring(1, 4, |_, cfg| cfg);
    r.world.run_for(SimDuration::from_secs(2));
    let per_node: Vec<u64> = (0..4)
        .map(|i| {
            r.world
                .hook::<RetherNode>(r.nodes[i], r.hooks[i])
                .unwrap()
                .stats()
                .tokens_received
        })
        .collect();
    for (i, &count) in per_node.iter().enumerate() {
        assert!(
            (350..=520).contains(&count),
            "node{}: {count} rotations in 2 s (expected ~480 at 4.1 ms/rotation)",
            i + 1
        );
    }
}

#[test]
fn reservation_lets_a_backlog_drain_in_fewer_cycles() {
    // Same 20-frame backlog on node1, with and without an RT reservation:
    // the reservation widens the per-hold budget, so the queue drains in
    // fewer token holds.
    let drain_time = |reserve: u32| {
        let mut r = ring(2, 3, |_, cfg| RetherConfig {
            nrt_quantum_bytes: 2 * 1024, // tight best-effort quantum
            ..cfg
        });
        if reserve > 0 {
            r.world
                .hook_mut::<RetherNode>(r.nodes[0], r.hooks[0])
                .unwrap()
                .reserve_rt(reserve);
        }
        let log = r.world.add_protocol(
            r.nodes[1],
            Binding::EtherType(EtherType::IPV4),
            Box::new(ArrivalLog::default()),
        );
        let (n0, n1) = (r.nodes[0], r.nodes[1]);
        udp_burst(&mut r.world, n0, n1, 7, 20, 1000);
        r.world.run_for(SimDuration::from_secs(2));
        let arrivals = &r
            .world
            .protocol::<ArrivalLog>(r.nodes[1], log)
            .unwrap()
            .arrivals;
        assert_eq!(arrivals.len(), 20, "everything must drain eventually");
        arrivals.iter().map(|(_, t)| *t).max().unwrap()
    };
    let without = drain_time(0);
    let with = drain_time(16 * 1024);
    assert!(
        with < without,
        "a 16 KB reservation must drain the backlog sooner: {with} vs {without}"
    );
}

#[test]
fn queue_cap_drops_excess_besteffort_frames() {
    let mut r = ring(3, 2, |_, cfg| RetherConfig {
        queue_cap: 8,
        nrt_quantum_bytes: 1024, // ≤2 frames per hold
        ..cfg
    });
    let (n0, n1) = (r.nodes[0], r.nodes[1]);
    // 30 frames burst at a node with a 1 KB hold budget and an 8-deep
    // queue: a couple go out in the current hold, 8 wait, the rest drop.
    udp_burst(&mut r.world, n0, n1, 7, 30, 500);
    r.world.run_for(SimDuration::from_secs(1));
    let stats = r
        .world
        .hook::<RetherNode>(r.nodes[0], r.hooks[0])
        .unwrap()
        .stats();
    assert!(
        stats.queue_drops >= 15,
        "expected most of the burst to overflow the 8-slot queue: {stats:?}"
    );
}

#[test]
fn two_senders_share_the_ring_without_starvation() {
    let mut r = ring(4, 3, |_, cfg| cfg);
    let log = r.world.add_protocol(
        r.nodes[2],
        Binding::EtherType(EtherType::IPV4),
        Box::new(ArrivalLog::default()),
    );
    let (n0, n1, n2) = (r.nodes[0], r.nodes[1], r.nodes[2]);
    // Steady streams from node1 and node2 toward node3 on distinct ports.
    for round in 0..10 {
        udp_burst(&mut r.world, n0, n2, 100, 4, 800);
        udp_burst(&mut r.world, n1, n2, 200, 4, 800);
        r.world
            .run_for(SimDuration::from_millis(20 * (round + 1) / (round + 1)));
        r.world.run_for(SimDuration::from_millis(20));
    }
    r.world.run_for(SimDuration::from_secs(1));
    let arrivals = &r
        .world
        .protocol::<ArrivalLog>(r.nodes[2], log)
        .unwrap()
        .arrivals;
    let from_a = arrivals.iter().filter(|(p, _)| *p == 100).count();
    let from_b = arrivals.iter().filter(|(p, _)| *p == 200).count();
    assert_eq!(from_a, 40, "sender A fully served");
    assert_eq!(from_b, 40, "sender B fully served");
}

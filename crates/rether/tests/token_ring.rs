//! End-to-end Rether tests: token circulation, data gating, failure
//! detection after exactly `token_send_limit` sends, ring reconstruction,
//! token regeneration, and the single-token invariant.

use vw_netsim::{Binding, Context, DeviceId, HookId, LinkConfig, Protocol, SimDuration, World};
use vw_packet::{EtherType, Frame, UdpBuilder};
use vw_rether::{RetherConfig, RetherNode, RetherStats};

struct Ring {
    world: World,
    nodes: Vec<DeviceId>,
    hooks: Vec<HookId>,
}

fn build_ring(seed: u64, n: u32) -> Ring {
    build_ring_with(seed, n, RetherConfig::new(Vec::new()))
}

fn build_ring_with(seed: u64, n: u32, template: RetherConfig) -> Ring {
    let mut world = World::new(seed);
    let hub = world.add_hub("bus", n as usize + 1);
    let nodes: Vec<DeviceId> = (1..=n)
        .map(|i| world.add_host(&format!("node{i}")))
        .collect();
    let ring: Vec<_> = nodes.iter().map(|&id| world.host_mac(id)).collect();
    let mut hooks = Vec::new();
    for &node in &nodes {
        world.connect(node, hub, LinkConfig::ethernet_10m());
        let cfg = RetherConfig {
            ring: ring.clone(),
            ..template.clone()
        };
        let rether = RetherNode::new(cfg, world.host_mac(node));
        hooks.push(world.add_hook(node, Box::new(rether)));
    }
    Ring {
        world,
        nodes,
        hooks,
    }
}

fn stats(ring: &Ring, i: usize) -> RetherStats {
    ring.world
        .hook::<RetherNode>(ring.nodes[i], ring.hooks[i])
        .unwrap()
        .stats()
}

#[test]
fn token_circulates_fairly() {
    let mut ring = build_ring(1, 4);
    ring.world.run_for(SimDuration::from_secs(1));
    let counts: Vec<u64> = (0..4).map(|i| stats(&ring, i).tokens_received).collect();
    assert!(counts.iter().all(|&c| c > 50), "token starved: {counts:?}");
    let min = counts.iter().min().unwrap();
    let max = counts.iter().max().unwrap();
    assert!(
        max - min <= 1,
        "rotation must be fair round-robin: {counts:?}"
    );
    // No failures ⇒ no retransmissions, reconstructions, or regenerations.
    for i in 0..4 {
        let s = stats(&ring, i);
        assert_eq!(s.token_retransmissions, 0);
        assert_eq!(s.reconstructions, 0);
        assert_eq!(s.regenerations, 0);
    }
}

#[test]
fn acks_match_passes_in_steady_state() {
    let mut ring = build_ring(2, 3);
    ring.world.run_for(SimDuration::from_secs(1));
    for i in 0..3 {
        let s = stats(&ring, i);
        assert_eq!(s.acks_sent, s.tokens_received);
        // Every pass eventually acked (within one in-flight token).
        assert!(s.tokens_passed >= s.tokens_received - 1);
    }
}

/// Counts UDP frames delivered to the stack.
#[derive(Default)]
struct UdpCounter {
    frames: u64,
}

impl Protocol for UdpCounter {
    fn name(&self) -> &str {
        "udp-counter"
    }

    fn on_frame(&mut self, _ctx: &mut Context<'_>, frame: Frame) {
        if frame.udp().is_some() {
            self.frames += 1;
        }
    }
}

#[test]
fn data_waits_for_the_token() {
    let mut ring = build_ring(3, 4);
    let src = ring.nodes[1];
    let dst = ring.nodes[3];
    let counter = ring.world.add_protocol(
        dst,
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpCounter::default()),
    );
    // Queue data while node1 does NOT hold the token (the token starts at
    // node0 and the injection happens at t=0).
    let frame = UdpBuilder::new()
        .src_mac(ring.world.host_mac(src))
        .dst_mac(ring.world.host_mac(dst))
        .src_ip(ring.world.host_ip(src))
        .dst_ip(ring.world.host_ip(dst))
        .src_port(1)
        .dst_port(99)
        .payload(b"token-gated")
        .build();
    ring.world.inject_from_stack(src, frame);
    // Before any rotation the frame must still be queued.
    ring.world.run_for(SimDuration::from_micros(100));
    let queued = ring
        .world
        .hook::<RetherNode>(src, ring.hooks[1])
        .unwrap()
        .queued();
    assert_eq!(queued, 1, "data must wait for the token");
    assert_eq!(
        ring.world
            .protocol::<UdpCounter>(dst, counter)
            .unwrap()
            .frames,
        0
    );
    // After a rotation it flows.
    ring.world.run_for(SimDuration::from_millis(50));
    assert_eq!(
        ring.world
            .protocol::<UdpCounter>(dst, counter)
            .unwrap()
            .frames,
        1
    );
}

#[test]
fn single_node_failure_detected_after_exactly_three_sends() {
    let mut ring = build_ring(4, 4);
    // Let the ring settle, then fail node3 (index 2).
    ring.world.run_for(SimDuration::from_millis(100));
    let before = stats(&ring, 1);
    ring.world.set_host_failed(ring.nodes[2], true);
    ring.world.run_for(SimDuration::from_millis(500));

    let after = stats(&ring, 1);
    // node2 (index 1) is the failed node's predecessor: it sent the token
    // once, retransmitted twice (3 sends total), then reconstructed.
    assert_eq!(after.reconstructions, 1, "exactly one ring reconstruction");
    assert_eq!(
        after.token_retransmissions - before.token_retransmissions,
        2,
        "token_send_limit=3 means 1 initial send + 2 retransmissions"
    );
    // Ring shrank to 3 on every survivor.
    for i in [0usize, 1, 3] {
        let view = ring
            .world
            .hook::<RetherNode>(ring.nodes[i], ring.hooks[i])
            .unwrap();
        assert_eq!(view.ring().len(), 3, "node{} ring view", i + 1);
    }
    // And the token still circulates among survivors.
    let counts_before: Vec<u64> = [0usize, 1, 3]
        .iter()
        .map(|&i| stats(&ring, i).tokens_received)
        .collect();
    ring.world.run_for(SimDuration::from_millis(300));
    let counts_after: Vec<u64> = [0usize, 1, 3]
        .iter()
        .map(|&i| stats(&ring, i).tokens_received)
        .collect();
    for (b, a) in counts_before.iter().zip(&counts_after) {
        assert!(
            a > b,
            "survivors keep rotating: {counts_before:?} -> {counts_after:?}"
        );
    }
}

#[test]
fn failed_first_node_is_also_recoverable() {
    let mut ring = build_ring(5, 3);
    ring.world.run_for(SimDuration::from_millis(100));
    ring.world.set_host_failed(ring.nodes[0], true);
    // Recovery may require a token regeneration (if node1 held the token
    // when it died), which takes ~regen_base × rank; allow plenty of time.
    ring.world.run_for(SimDuration::from_secs(4));
    for i in [1usize, 2] {
        let view = ring
            .world
            .hook::<RetherNode>(ring.nodes[i], ring.hooks[i])
            .unwrap();
        assert_eq!(view.ring().len(), 2);
        assert!(view.stats().tokens_received > 0);
    }
}

#[test]
fn lost_token_is_regenerated() {
    // Fail ALL nodes' view of the token by failing the holder chain: fail
    // node1 and node2 simultaneously right after start; survivors must
    // regenerate.
    let mut ring = build_ring(6, 4);
    ring.world.run_for(SimDuration::from_millis(20));
    ring.world.set_host_failed(ring.nodes[0], true);
    ring.world.set_host_failed(ring.nodes[1], true);
    ring.world.run_for(SimDuration::from_secs(4));
    let regens: u64 = [2usize, 3]
        .iter()
        .map(|&i| stats(&ring, i).regenerations)
        .sum();
    assert!(regens >= 1, "someone must regenerate the token");
    // Survivors circulate again.
    let a = stats(&ring, 2).tokens_received;
    ring.world.run_for(SimDuration::from_millis(500));
    assert!(stats(&ring, 2).tokens_received > a);
}

#[test]
fn stale_and_duplicate_tokens_are_killed() {
    // Make node1 the sole survivor: it ends up holding the token
    // permanently. A duplicate token of the same generation (or any older
    // generation) arriving at a non-idle node must be discarded, restoring
    // the single-token invariant.
    let mut ring = build_ring(7, 3);
    ring.world.run_for(SimDuration::from_millis(100));
    let node1 = ring.nodes[0];
    let mac2 = ring.world.host_mac(ring.nodes[1]);
    let mac1 = ring.world.host_mac(node1);
    ring.world.set_host_failed(ring.nodes[1], true);
    ring.world.set_host_failed(ring.nodes[2], true);
    ring.world.run_for(SimDuration::from_secs(3));
    let holder = ring.world.hook::<RetherNode>(node1, ring.hooks[0]).unwrap();
    assert_eq!(holder.ring().len(), 1, "both peers declared dead");
    assert!(holder.is_holding(), "sole survivor keeps the token");
    let gen_now = holder.generation();
    let duplicate = vw_rether::wire::build_token(
        mac2,
        mac1,
        &vw_rether::wire::Token {
            generation: gen_now,
            cycle: 0,
            ring: vec![mac1, mac2],
        },
    );
    let before = stats(&ring, 0).stale_tokens_dropped;
    ring.world.inject_from_wire(node1, duplicate);
    ring.world.run_for(SimDuration::from_millis(10));
    assert_eq!(stats(&ring, 0).stale_tokens_dropped, before + 1);
}

#[test]
fn rt_reservation_increases_per_hold_budget() {
    // A 48 KB per-hold budget takes ~40 ms to serialize at 10 Mb/s and the
    // token queues behind it — the ack timeout must cover the burst or the
    // ring (correctly!) declares its peer dead.
    let mut ring = build_ring_with(
        8,
        2,
        RetherConfig {
            token_ack_timeout: SimDuration::from_millis(100),
            regen_base: SimDuration::from_millis(500),
            ..RetherConfig::new(Vec::new())
        },
    );
    {
        let node = ring
            .world
            .hook_mut::<RetherNode>(ring.nodes[0], ring.hooks[0])
            .unwrap();
        node.reserve_rt(32 * 1024);
    }
    // Flood node0 with queued data; with the reservation, more frames per
    // hold are released than the default quantum alone would allow.
    for i in 0..40 {
        let frame = UdpBuilder::new()
            .src_mac(ring.world.host_mac(ring.nodes[0]))
            .dst_mac(ring.world.host_mac(ring.nodes[1]))
            .src_ip(ring.world.host_ip(ring.nodes[0]))
            .dst_ip(ring.world.host_ip(ring.nodes[1]))
            .src_port(i)
            .dst_port(9)
            .payload(&vec![0u8; 1400])
            .build();
        ring.world.inject_from_stack(ring.nodes[0], frame);
    }
    ring.world.run_for(SimDuration::from_secs(1));
    let s = stats(&ring, 0);
    assert_eq!(
        s.data_frames_released, 40,
        "reservation lets everything out"
    );
    assert_eq!(s.queue_drops, 0);
    assert_eq!(s.reconstructions, 0, "the ring must survive the burst");
}

#[test]
fn deterministic_rotation() {
    let run = |seed| {
        let mut ring = build_ring(seed, 4);
        ring.world.run_for(SimDuration::from_secs(1));
        (0..4)
            .map(|i| stats(&ring, i).tokens_received)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
}

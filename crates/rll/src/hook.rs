//! The RLL as a simulator hook.

use std::collections::HashMap;

use vw_netsim::{Context, Hook, SimDuration, TimerId, Verdict};
use vw_packet::{Frame, MacAddr};

use crate::window::{ReceiverWindow, RecvAction, SendAction, SenderWindow};
use crate::wire::{self, RllOpcode};

/// Configuration for a [`RllHook`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RllConfig {
    /// Sliding-window size, in frames.
    pub window: u32,
    /// Retransmission timeout.
    pub rto: SimDuration,
    /// Give up on a peer after this many consecutive timeouts (the frames
    /// are dropped and counted in [`RllStats::gave_up`]).
    pub max_retries: u32,
    /// Simulated CPU cost charged per frame for encapsulation or
    /// decapsulation (the paper's Figure 8 case (iii) overhead).
    pub cost_per_frame: SimDuration,
}

impl Default for RllConfig {
    fn default() -> Self {
        RllConfig {
            window: 32,
            rto: SimDuration::from_millis(2),
            max_retries: 10,
            cost_per_frame: SimDuration::ZERO,
        }
    }
}

/// Counters exposed by the RLL for tests and the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RllStats {
    /// Inner frames accepted from the layer above.
    pub accepted: u64,
    /// DATA frames put on the wire (including retransmissions).
    pub data_sent: u64,
    /// DATA retransmissions.
    pub retransmissions: u64,
    /// ACK frames sent.
    pub acks_sent: u64,
    /// Frames delivered up exactly once, in order.
    pub delivered: u64,
    /// Duplicate/out-of-order DATA frames discarded.
    pub discarded: u64,
    /// Frames arriving corrupted (checksum failure) and treated as lost.
    pub corrupted: u64,
    /// Frames abandoned after `max_retries` consecutive timeouts.
    pub gave_up: u64,
    /// Frames bypassing the RLL (broadcast/multicast or foreign RLL
    /// traffic passed through).
    pub bypassed: u64,
}

struct PeerState {
    sender: SenderWindow,
    receiver: ReceiverWindow,
    timer: Option<TimerId>,
}

/// The Reliable Link Layer, installed as the wire-most hook on a host.
///
/// Every unicast frame handed down from the layers above (including
/// VirtualWire's control-plane messages — the FIE sits stack-ward of the
/// RLL, exactly as in the paper) is encapsulated in a sequenced RLL DATA
/// frame and retransmitted until acknowledged, so that MAC-level loss or
/// corruption can never silently remove a packet from under the fault
/// injection engine.
///
/// Broadcast and multicast frames bypass the ARQ (there is no single peer
/// to acknowledge them) and are passed through unchanged.
pub struct RllHook {
    config: RllConfig,
    peers: HashMap<MacAddr, PeerState>,
    stats: RllStats,
}

impl std::fmt::Debug for RllHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RllHook")
            .field("config", &self.config)
            .field("peers", &self.peers.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RllHook {
    /// Creates an RLL layer with the given configuration.
    pub fn new(config: RllConfig) -> Self {
        RllHook {
            config,
            peers: HashMap::new(),
            stats: RllStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RllStats {
        self.stats
    }

    fn peer(&mut self, mac: MacAddr) -> &mut PeerState {
        let window = self.config.window;
        self.peers.entry(mac).or_insert_with(|| PeerState {
            sender: SenderWindow::new(window),
            receiver: ReceiverWindow::new(),
            timer: None,
        })
    }

    /// Timer tokens encode the peer's MAC low bits; since MACs here are
    /// `MacAddr::from_index` style, pack the 6 bytes into the token.
    fn token_for(mac: MacAddr) -> u64 {
        let o = mac.octets();
        u64::from_be_bytes([0, 0, o[0], o[1], o[2], o[3], o[4], o[5]])
    }

    fn mac_for(token: u64) -> MacAddr {
        let b = token.to_be_bytes();
        MacAddr::new([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_>, mac: MacAddr) {
        let rto = self.config.rto;
        let token = Self::token_for(mac);
        let peer = self.peer(mac);
        if peer.timer.is_none() {
            peer.timer = Some(ctx.set_timer(rto, token));
        }
    }

    fn disarm_timer(&mut self, ctx: &mut Context<'_>, mac: MacAddr) {
        if let Some(peer) = self.peers.get_mut(&mac) {
            if let Some(t) = peer.timer.take() {
                ctx.cancel_timer(t);
            }
        }
    }

    fn transmit_data(&mut self, ctx: &mut Context<'_>, inner: &Frame, seq: u32) {
        let ack = self
            .peers
            .get(&inner.dst())
            .map(|p| p.receiver.expected())
            .unwrap_or(0);
        let data = wire::build_data(inner, seq, ack);
        self.stats.data_sent += 1;
        ctx.send(data);
    }
}

impl Hook for RllHook {
    fn name(&self) -> &str {
        "rll"
    }

    fn on_outbound(&mut self, ctx: &mut Context<'_>, frame: Frame) -> Verdict {
        ctx.charge(self.config.cost_per_frame);
        let dst = frame.dst();
        if dst.is_broadcast() || dst.is_multicast() {
            self.stats.bypassed += 1;
            return Verdict::Accept(frame);
        }
        self.stats.accepted += 1;
        let action = self.peer(dst).sender.offer(frame);
        if let SendAction::Transmit { seq, frame } = action {
            self.transmit_data(ctx, &frame, seq);
        }
        self.arm_timer(ctx, dst);
        // The original frame never goes out directly; its DATA encapsulation
        // was emitted through the context.
        Verdict::Replace(Vec::new())
    }

    fn on_inbound(&mut self, ctx: &mut Context<'_>, frame: Frame) -> Verdict {
        ctx.charge(self.config.cost_per_frame);
        if frame.ethertype() != vw_packet::EtherType::RLL {
            // Broadcast bypass traffic or a host without RLL peering.
            self.stats.bypassed += 1;
            return Verdict::Accept(frame);
        }
        let (shim, payload) = match wire::parse(&frame) {
            Ok(parsed) => parsed,
            Err(_) => {
                self.stats.corrupted += 1;
                return Verdict::Consume; // treated as lost; sender retransmits
            }
        };
        let peer_mac = frame.src();
        match shim.opcode {
            RllOpcode::Data => {
                let inner = wire::decapsulate(&frame, &shim, payload);
                let action = self.peer(peer_mac).receiver.on_data(shim.seq);
                let ack_no = match action {
                    RecvAction::Deliver { ack } => {
                        self.stats.delivered += 1;
                        ctx.deliver_up(inner);
                        ack
                    }
                    RecvAction::AckOnly { ack } => {
                        self.stats.discarded += 1;
                        ack
                    }
                };
                let ack_frame = wire::build_ack(ctx.mac(), peer_mac, ack_no);
                self.stats.acks_sent += 1;
                ctx.transmit_raw(ack_frame);
                Verdict::Consume
            }
            RllOpcode::Ack => {
                let released: Vec<(u32, Frame)> = self.peer(peer_mac).sender.on_ack(shim.ack);
                for (seq, inner) in released {
                    self.transmit_data(ctx, &inner, seq);
                }
                let idle = self.peer(peer_mac).sender.is_idle();
                self.disarm_timer(ctx, peer_mac);
                if !idle {
                    self.arm_timer(ctx, peer_mac);
                }
                Verdict::Consume
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let mac = Self::mac_for(token);
        let Some(peer) = self.peers.get_mut(&mac) else {
            return;
        };
        peer.timer = None;
        if peer.sender.is_idle() {
            return;
        }
        if peer.sender.retries() >= self.config.max_retries {
            let lost = peer.sender.reset() as u64;
            self.stats.gave_up += lost;
            ctx.trace_note(format!("rll gave up on {mac}: {lost} frames dropped"));
            return;
        }
        let retransmit = peer.sender.on_timeout();
        self.stats.retransmissions += retransmit.len() as u64;
        for (seq, inner) in retransmit {
            self.transmit_data(ctx, &inner, seq);
        }
        self.arm_timer(ctx, mac);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_mac_round_trip() {
        for mac in [
            MacAddr::from_index(1),
            MacAddr::from_index(250),
            MacAddr::new([0x00, 0x12, 0x34, 0x56, 0x78, 0x9a]),
        ] {
            assert_eq!(RllHook::mac_for(RllHook::token_for(mac)), mac);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = RllConfig::default();
        assert!(cfg.window >= 1);
        assert!(cfg.max_retries >= 1);
        assert!(cfg.rto > SimDuration::ZERO);
    }
}

//! The Reliable Link Layer (RLL) of the VirtualWire reproduction.
//!
//! VirtualWire must present a *fully controlled* fault environment: every
//! packet drop an experiment observes has to be one the Fault Injection
//! Engine injected. Real wires disagree — MAC-level bit errors drop frames
//! behind the FIE's back. The paper's answer (Section 3.3) is a Reliable
//! Link Layer below the FIE: a simple sliding-window protocol that
//! guarantees delivery of every frame handed to it.
//!
//! This crate implements that layer as a [`RllHook`] for the simulator's
//! hook chain, built on pure go-back-N [`window`] state machines and a
//! checksummed [`wire`] format (the checksum stands in for the Ethernet FCS
//! so corrupted frames are detected and retransmitted rather than silently
//! delivered).
//!
//! # Example
//!
//! Two hosts on a lossy link still deliver every frame, in order, because
//! the RLL retransmits under the hood:
//!
//! ```
//! use vw_netsim::{Binding, ErrorModel, LinkConfig, SimDuration, World};
//! use vw_netsim::apps::{UdpFlooder, UdpSink};
//! use vw_packet::EtherType;
//! use vw_rll::{RllConfig, RllHook};
//!
//! let mut world = World::new(11);
//! let a = world.add_host("a");
//! let b = world.add_host("b");
//! world.connect(a, b, LinkConfig::fast_ethernet().errors(ErrorModel::lossy(0.2)));
//! for h in [a, b] {
//!     world.add_hook(h, Box::new(RllHook::new(RllConfig::default())));
//! }
//! let sink = world.add_protocol(b, Binding::EtherType(EtherType::IPV4),
//!     Box::new(UdpSink::new(9)));
//! let flooder = UdpFlooder::new(world.host_mac(b), world.host_ip(b), 9, 9000,
//!     5_000_000, 500, 25_000);
//! world.add_protocol(a, Binding::EtherType(EtherType::IPV4), Box::new(flooder));
//! world.run_for(SimDuration::from_secs(1));
//! let sink = world.protocol::<UdpSink>(b, sink).unwrap();
//! assert_eq!(sink.frames(), 50); // nothing lost despite 20% link loss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hook;
pub mod window;
pub mod wire;

pub use hook::{RllConfig, RllHook, RllStats};

//! Pure sliding-window state machines (go-back-N), independent of the
//! simulator so they can be tested exhaustively.

use std::collections::VecDeque;

use vw_packet::Frame;

/// Sender half of a go-back-N ARQ session with one peer.
///
/// Sequence numbers are 32-bit and monotonically increasing (no wrap
/// handling is needed at simulated-LAN lifetimes: 2³² frames at 100 Mb/s is
/// weeks of traffic).
#[derive(Debug)]
pub struct SenderWindow {
    window: u32,
    base: u32,
    next_seq: u32,
    /// Unacknowledged inner frames, `base..next_seq`, front = `base`.
    in_flight: VecDeque<Frame>,
    /// Frames waiting for window space.
    backlog: VecDeque<Frame>,
    retries: u32,
}

/// What the sender should do after an event.
#[derive(Debug, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit this inner frame with this sequence number.
    Transmit {
        /// Assigned sequence number.
        seq: u32,
        /// The inner frame to encapsulate and put on the wire.
        frame: Frame,
    },
    /// Nothing to do right now.
    Nothing,
}

impl SenderWindow {
    /// Creates a sender with the given window size (in frames).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u32) -> Self {
        assert!(window > 0, "window must be at least one frame");
        SenderWindow {
            window,
            base: 0,
            next_seq: 0,
            in_flight: VecDeque::new(),
            backlog: VecDeque::new(),
            retries: 0,
        }
    }

    /// Offers a frame for transmission. Returns the transmit action if the
    /// window has room, otherwise queues it in the backlog.
    pub fn offer(&mut self, frame: Frame) -> SendAction {
        if self.next_seq.wrapping_sub(self.base) < self.window {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.in_flight.push_back(frame.clone());
            SendAction::Transmit { seq, frame }
        } else {
            self.backlog.push_back(frame);
            SendAction::Nothing
        }
    }

    /// Handles a cumulative acknowledgment (`ack` = next seq the peer
    /// expects). Returns frames newly released from the backlog, each with
    /// its assigned sequence number.
    pub fn on_ack(&mut self, ack: u32) -> Vec<(u32, Frame)> {
        // Ignore acks outside the sensible range.
        let outstanding = self.next_seq.wrapping_sub(self.base);
        let advance = ack.wrapping_sub(self.base);
        if advance == 0 || advance > outstanding {
            return Vec::new();
        }
        for _ in 0..advance {
            self.in_flight.pop_front();
        }
        self.base = ack;
        self.retries = 0;
        // Release backlog into the freed window.
        let mut released = Vec::new();
        while self.next_seq.wrapping_sub(self.base) < self.window {
            match self.backlog.pop_front() {
                Some(frame) => {
                    let seq = self.next_seq;
                    self.next_seq = self.next_seq.wrapping_add(1);
                    self.in_flight.push_back(frame.clone());
                    released.push((seq, frame));
                }
                None => break,
            }
        }
        released
    }

    /// Returns every unacknowledged frame (for a go-back-N timeout
    /// retransmission), with sequence numbers, and counts the retry.
    pub fn on_timeout(&mut self) -> Vec<(u32, Frame)> {
        if self.in_flight.is_empty() {
            return Vec::new();
        }
        self.retries += 1;
        self.in_flight
            .iter()
            .enumerate()
            .map(|(i, f)| (self.base.wrapping_add(i as u32), f.clone()))
            .collect()
    }

    /// Consecutive timeouts since the last forward progress.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// `true` when nothing is awaiting acknowledgment.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Number of frames in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of frames waiting for window space.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Discards all state (give-up path after too many retries).
    pub fn reset(&mut self) -> usize {
        let lost = self.in_flight.len() + self.backlog.len();
        self.base = self.next_seq;
        self.in_flight.clear();
        self.backlog.clear();
        self.retries = 0;
        lost
    }
}

/// Receiver half of a go-back-N session with one peer.
#[derive(Debug, Default)]
pub struct ReceiverWindow {
    expected: u32,
}

/// What the receiver decided about an arriving DATA frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvAction {
    /// In-order frame: deliver it up, then acknowledge `ack`.
    Deliver {
        /// Cumulative ack to send (next expected sequence).
        ack: u32,
    },
    /// Duplicate or out-of-order: discard, but re-acknowledge `ack`.
    AckOnly {
        /// Cumulative ack to send.
        ack: u32,
    },
}

impl ReceiverWindow {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an arriving DATA sequence number.
    pub fn on_data(&mut self, seq: u32) -> RecvAction {
        if seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            RecvAction::Deliver { ack: self.expected }
        } else {
            RecvAction::AckOnly { ack: self.expected }
        }
    }

    /// The next sequence number the receiver expects.
    pub fn expected(&self) -> u32 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vw_packet::{EthernetBuilder, MacAddr};

    fn frame(tag: u8) -> Frame {
        EthernetBuilder::new()
            .src(MacAddr::from_index(1))
            .dst(MacAddr::from_index(2))
            .payload(&[tag])
            .build()
    }

    #[test]
    fn offers_fill_window_then_backlog() {
        let mut s = SenderWindow::new(2);
        assert!(matches!(
            s.offer(frame(0)),
            SendAction::Transmit { seq: 0, .. }
        ));
        assert!(matches!(
            s.offer(frame(1)),
            SendAction::Transmit { seq: 1, .. }
        ));
        assert_eq!(s.offer(frame(2)), SendAction::Nothing);
        assert_eq!(s.in_flight_len(), 2);
        assert_eq!(s.backlog_len(), 1);
    }

    #[test]
    fn ack_slides_window_and_releases_backlog() {
        let mut s = SenderWindow::new(2);
        s.offer(frame(0));
        s.offer(frame(1));
        s.offer(frame(2));
        let released = s.on_ack(1);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0, 2);
        assert_eq!(s.in_flight_len(), 2);
        assert!(s.backlog_len() == 0);
    }

    #[test]
    fn stale_and_wild_acks_ignored() {
        let mut s = SenderWindow::new(4);
        s.offer(frame(0));
        s.offer(frame(1));
        assert!(s.on_ack(0).is_empty()); // no progress
        assert!(s.on_ack(7).is_empty()); // beyond next_seq
        assert_eq!(s.in_flight_len(), 2);
        s.on_ack(2);
        assert!(s.is_idle());
    }

    #[test]
    fn timeout_retransmits_all_in_flight() {
        let mut s = SenderWindow::new(4);
        s.offer(frame(0));
        s.offer(frame(1));
        s.offer(frame(2));
        let rt = s.on_timeout();
        assert_eq!(
            rt.iter().map(|(q, _)| *q).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(s.retries(), 1);
        s.on_timeout();
        assert_eq!(s.retries(), 2);
        s.on_ack(3);
        assert_eq!(s.retries(), 0);
        assert!(s.on_timeout().is_empty());
    }

    #[test]
    fn reset_discards_everything() {
        let mut s = SenderWindow::new(2);
        s.offer(frame(0));
        s.offer(frame(1));
        s.offer(frame(2));
        assert_eq!(s.reset(), 3);
        assert!(s.is_idle());
        // Sequence numbering continues from where it was.
        assert!(matches!(
            s.offer(frame(3)),
            SendAction::Transmit { seq: 2, .. }
        ));
    }

    #[test]
    fn receiver_delivers_in_order_only() {
        let mut r = ReceiverWindow::new();
        assert_eq!(r.on_data(0), RecvAction::Deliver { ack: 1 });
        assert_eq!(r.on_data(2), RecvAction::AckOnly { ack: 1 });
        assert_eq!(r.on_data(0), RecvAction::AckOnly { ack: 1 });
        assert_eq!(r.on_data(1), RecvAction::Deliver { ack: 2 });
        assert_eq!(r.expected(), 2);
    }

    proptest! {
        /// Drive a sender/receiver pair through a randomly lossy channel
        /// with randomized retransmission timing; every offered frame must
        /// be delivered exactly once, in order.
        #[test]
        fn gbn_delivers_exactly_once_in_order(
            seed in any::<u64>(),
            nframes in 1usize..60,
            loss_pct in 0u32..70,
            window in 1u32..12,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut sender = SenderWindow::new(window);
            let mut receiver = ReceiverWindow::new();
            let mut wire: VecDeque<(u32, Frame)> = VecDeque::new(); // data channel
            let mut acks: VecDeque<u32> = VecDeque::new();          // ack channel
            let mut delivered: Vec<u8> = Vec::new();
            let mut offered = 0usize;

            let mut steps = 0;
            while delivered.len() < nframes {
                steps += 1;
                prop_assert!(steps < 100_000, "no progress: {} of {}", delivered.len(), nframes);
                // Offer new frames while any remain.
                if offered < nframes {
                    if let SendAction::Transmit { seq, frame } = sender.offer(frame(offered as u8)) {
                        wire.push_back((seq, frame));
                    }
                    offered += 1;
                }
                // Channel: deliver or lose the head-of-line data frame.
                if let Some((seq, _frame)) = wire.pop_front() {
                    if rng.random_range(0..100u32) >= loss_pct {
                        match receiver.on_data(seq) {
                            RecvAction::Deliver { ack } => {
                                delivered.push(seq as u8);
                                acks.push_back(ack);
                            }
                            RecvAction::AckOnly { ack } => acks.push_back(ack),
                        }
                    }
                }
                // Ack channel: also lossy.
                if let Some(ack) = acks.pop_front() {
                    if rng.random_range(0..100u32) >= loss_pct {
                        for (seq, f) in sender.on_ack(ack) {
                            wire.push_back((seq, f));
                        }
                    }
                }
                // Periodic timeout when the pipe has drained.
                if wire.is_empty() && acks.is_empty() && !sender.is_idle() {
                    for (seq, f) in sender.on_timeout() {
                        wire.push_back((seq, f));
                    }
                }
            }
            // Exactly once, in order.
            let expect: Vec<u8> = (0..nframes as u8).collect();
            prop_assert_eq!(delivered, expect);
        }
    }
}

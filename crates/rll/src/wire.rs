//! RLL wire format.
//!
//! An RLL frame is an Ethernet frame with EtherType
//! [`EtherType::RLL`](vw_packet::EtherType::RLL) whose payload is a shim
//! header followed (for DATA) by the original frame's payload:
//!
//! ```text
//! 0        1        2        6        10       12       14
//! ┌────────┬────────┬────────┬────────┬────────┬────────┬──────────────┐
//! │ opcode │ rsvd   │  seq   │  ack   │ inner  │ cksum  │  payload ... │
//! │  (u8)  │ (u8)   │ (u32)  │ (u32)  │ethertyp│ (u16)  │ (DATA only)  │
//! └────────┴────────┴────────┴────────┴────────┴────────┴──────────────┘
//! ```
//!
//! (The checksum field sits at a 16-bit-aligned offset so that a correct
//! frame sums to zero under RFC 1071 verification.)
//!
//! The checksum is the RFC 1071 sum over the whole shim (checksum field
//! zeroed) plus payload. It stands in for the Ethernet FCS the simulator's
//! error models corrupt: a frame failing it is treated as lost, which is
//! exactly the guarantee VirtualWire needs — "MAC layer bit errors" must
//! surface as retransmissions, not silent drops (Section 3.3).

use vw_packet::{checksum, EtherType, EthernetBuilder, Frame, MacAddr, ParseError};

/// Length of the RLL shim header.
pub const SHIM_LEN: usize = 14;

/// RLL frame opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RllOpcode {
    /// A sequenced data frame carrying an encapsulated payload.
    Data,
    /// A cumulative acknowledgment.
    Ack,
}

impl RllOpcode {
    fn to_byte(self) -> u8 {
        match self {
            RllOpcode::Data => 1,
            RllOpcode::Ack => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RllOpcode::Data),
            2 => Some(RllOpcode::Ack),
            _ => None,
        }
    }
}

/// A parsed RLL shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RllShim {
    /// DATA or ACK.
    pub opcode: RllOpcode,
    /// Sequence number (DATA) or zero (ACK).
    pub seq: u32,
    /// Cumulative acknowledgment: next sequence number expected.
    pub ack: u32,
    /// The EtherType of the encapsulated frame (DATA; zero for ACK).
    pub inner_ethertype: EtherType,
}

/// Builds an RLL DATA frame encapsulating `inner`'s payload and EtherType.
/// The outer MAC addresses are copied from the inner frame.
pub fn build_data(inner: &Frame, seq: u32, ack: u32) -> Frame {
    build(
        inner.src(),
        inner.dst(),
        RllShim {
            opcode: RllOpcode::Data,
            seq,
            ack,
            inner_ethertype: inner.ethertype(),
        },
        inner.payload(),
    )
}

/// Builds an RLL ACK frame from `src` to `dst` acknowledging everything
/// below `ack`.
pub fn build_ack(src: MacAddr, dst: MacAddr, ack: u32) -> Frame {
    build(
        src,
        dst,
        RllShim {
            opcode: RllOpcode::Ack,
            seq: 0,
            ack,
            inner_ethertype: EtherType(0),
        },
        &[],
    )
}

fn build(src: MacAddr, dst: MacAddr, shim: RllShim, payload: &[u8]) -> Frame {
    let mut body = vw_packet::arena::take_buffer(SHIM_LEN + payload.len());
    body.push(shim.opcode.to_byte());
    body.push(0); // reserved: keeps later fields 16-bit aligned
    body.extend_from_slice(&shim.seq.to_be_bytes());
    body.extend_from_slice(&shim.ack.to_be_bytes());
    body.extend_from_slice(&shim.inner_ethertype.value().to_be_bytes());
    body.extend_from_slice(&[0, 0]); // checksum placeholder
    body.extend_from_slice(payload);
    let sum = checksum::checksum(&body);
    body[12..14].copy_from_slice(&sum.to_be_bytes());
    EthernetBuilder::new()
        .src(src)
        .dst(dst)
        .ethertype(EtherType::RLL)
        .payload_owned(body)
        .build_take()
}

/// Parses and integrity-checks an RLL frame, returning the shim and the
/// encapsulated payload bytes.
///
/// # Errors
///
/// Returns [`ParseError`] if the frame is not RLL, is truncated, has an
/// unknown opcode, or fails the shim checksum (i.e. was corrupted on the
/// wire).
pub fn parse(frame: &Frame) -> Result<(RllShim, &[u8]), ParseError> {
    if frame.ethertype() != EtherType::RLL {
        return Err(ParseError::new("not an RLL frame"));
    }
    let body = frame.payload();
    if body.len() < SHIM_LEN {
        return Err(ParseError::new("RLL frame truncated"));
    }
    if checksum::checksum(body) != 0 {
        return Err(ParseError::new("RLL checksum mismatch (corrupted frame)"));
    }
    let opcode = RllOpcode::from_byte(body[0])
        .ok_or_else(|| ParseError::new(format!("unknown RLL opcode {}", body[0])))?;
    let seq = u32::from_be_bytes([body[2], body[3], body[4], body[5]]);
    let ack = u32::from_be_bytes([body[6], body[7], body[8], body[9]]);
    let inner_ethertype = EtherType(u16::from_be_bytes([body[10], body[11]]));
    Ok((
        RllShim {
            opcode,
            seq,
            ack,
            inner_ethertype,
        },
        &body[SHIM_LEN..],
    ))
}

/// Reconstructs the original frame from a DATA shim and payload, restoring
/// the inner EtherType and the outer MAC addresses.
pub fn decapsulate(outer: &Frame, shim: &RllShim, payload: &[u8]) -> Frame {
    EthernetBuilder::new()
        .src(outer.src())
        .dst(outer.dst())
        .ethertype(shim.inner_ethertype)
        .payload(payload)
        .build_take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vw_packet::UdpBuilder;

    fn inner() -> Frame {
        UdpBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(MacAddr::from_index(2))
            .src_port(5)
            .dst_port(7)
            .payload(b"inner data")
            .build()
    }

    #[test]
    fn data_round_trip() {
        let original = inner();
        let data = build_data(&original, 42, 7);
        assert_eq!(data.ethertype(), EtherType::RLL);
        assert_eq!(data.src(), original.src());
        assert_eq!(data.dst(), original.dst());
        let (shim, payload) = parse(&data).unwrap();
        assert_eq!(shim.opcode, RllOpcode::Data);
        assert_eq!(shim.seq, 42);
        assert_eq!(shim.ack, 7);
        assert_eq!(shim.inner_ethertype, EtherType::IPV4);
        let restored = decapsulate(&data, &shim, payload);
        assert_eq!(restored, original);
    }

    #[test]
    fn ack_round_trip() {
        let ack = build_ack(MacAddr::from_index(3), MacAddr::from_index(4), 1234);
        let (shim, payload) = parse(&ack).unwrap();
        assert_eq!(shim.opcode, RllOpcode::Ack);
        assert_eq!(shim.ack, 1234);
        assert!(payload.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let data = build_data(&inner(), 1, 0);
        for byte in 14..data.len() {
            let mut bad = data.clone();
            bad.flip_bit(byte, 2);
            assert!(parse(&bad).is_err(), "flip at byte {byte} went undetected");
        }
    }

    #[test]
    fn non_rll_rejected() {
        assert!(parse(&inner()).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let short = EthernetBuilder::new()
            .ethertype(EtherType::RLL)
            .payload(&[1, 2, 3])
            .build();
        assert!(parse(&short).is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_payload_round_trips(
            seq in any::<u32>(),
            ack in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..800),
        ) {
            let original = EthernetBuilder::new()
                .src(MacAddr::from_index(9))
                .dst(MacAddr::from_index(10))
                .ethertype(EtherType(0x7777))
                .payload(&payload)
                .build();
            let data = build_data(&original, seq, ack);
            let (shim, p) = parse(&data).unwrap();
            prop_assert_eq!(shim.seq, seq);
            prop_assert_eq!(shim.ack, ack);
            let restored = decapsulate(&data, &shim, p);
            prop_assert_eq!(restored, original);
        }
    }
}

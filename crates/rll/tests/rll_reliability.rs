//! End-to-end RLL tests over the simulator: exactly-once in-order delivery
//! under loss and corruption, bypass semantics, give-up behavior.

use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, Context, ErrorModel, LinkConfig, Protocol, SimDuration, World};
use vw_packet::{EtherType, EthernetBuilder, Frame, MacAddr};
use vw_rll::{RllConfig, RllHook};

/// Records payload tags of received frames on a custom ethertype.
#[derive(Default)]
struct TagRecorder {
    tags: Vec<u8>,
}

impl Protocol for TagRecorder {
    fn name(&self) -> &str {
        "tag-recorder"
    }

    fn on_frame(&mut self, _ctx: &mut Context<'_>, frame: Frame) {
        if frame.ethertype() == EtherType(0x7777) {
            self.tags.push(frame.payload()[0]);
        }
    }
}

fn rll_pair(
    world: &mut World,
    link: LinkConfig,
    config: RllConfig,
) -> (
    vw_netsim::DeviceId,
    vw_netsim::DeviceId,
    vw_netsim::HookId,
    vw_netsim::HookId,
) {
    let a = world.add_host("a");
    let b = world.add_host("b");
    world.connect(a, b, link);
    let ha = world.add_hook(a, Box::new(RllHook::new(config)));
    let hb = world.add_hook(b, Box::new(RllHook::new(config)));
    (a, b, ha, hb)
}

fn tag_frame(src: MacAddr, dst: MacAddr, tag: u8) -> Frame {
    EthernetBuilder::new()
        .src(src)
        .dst(dst)
        .ethertype(EtherType(0x7777))
        .payload(&[tag; 40])
        .build()
}

#[test]
fn delivers_in_order_over_perfect_link() {
    let mut world = World::new(1);
    let (a, b, _, _) = rll_pair(
        &mut world,
        LinkConfig::fast_ethernet(),
        RllConfig::default(),
    );
    let rec = world.add_protocol(b, Binding::All, Box::new(TagRecorder::default()));
    for i in 0..50 {
        world.inject_from_stack(a, tag_frame(world.host_mac(a), world.host_mac(b), i));
    }
    world.run_for(SimDuration::from_millis(100));
    let tags = &world.protocol::<TagRecorder>(b, rec).unwrap().tags;
    assert_eq!(*tags, (0..50).collect::<Vec<u8>>());
}

#[test]
fn exactly_once_in_order_under_heavy_loss() {
    for seed in [7, 8, 9] {
        let mut world = World::new(seed);
        let (a, b, ha, _) = rll_pair(
            &mut world,
            LinkConfig::fast_ethernet().errors(ErrorModel::lossy(0.35)),
            RllConfig {
                max_retries: 100,
                ..RllConfig::default()
            },
        );
        let rec = world.add_protocol(b, Binding::All, Box::new(TagRecorder::default()));
        for i in 0..100 {
            world.inject_from_stack(a, tag_frame(world.host_mac(a), world.host_mac(b), i));
        }
        world.run_for(SimDuration::from_secs(5));
        let tags = &world.protocol::<TagRecorder>(b, rec).unwrap().tags;
        assert_eq!(*tags, (0..100).collect::<Vec<u8>>(), "seed {seed}");
        let stats = world.hook::<RllHook>(a, ha).unwrap().stats();
        assert!(stats.retransmissions > 0, "35% loss must cause retransmits");
        assert_eq!(stats.gave_up, 0);
    }
}

#[test]
fn exactly_once_under_corruption() {
    let mut world = World::new(21);
    let (a, b, ha, hb) = rll_pair(
        &mut world,
        LinkConfig::fast_ethernet().errors(ErrorModel::bit_errors(0.0005)),
        RllConfig {
            max_retries: 100,
            ..RllConfig::default()
        },
    );
    let rec = world.add_protocol(b, Binding::All, Box::new(TagRecorder::default()));
    for i in 0..100 {
        world.inject_from_stack(a, tag_frame(world.host_mac(a), world.host_mac(b), i));
    }
    world.run_for(SimDuration::from_secs(5));
    let tags = &world.protocol::<TagRecorder>(b, rec).unwrap().tags;
    assert_eq!(*tags, (0..100).collect::<Vec<u8>>());
    let corrupted = world.hook::<RllHook>(b, hb).unwrap().stats().corrupted
        + world.hook::<RllHook>(a, ha).unwrap().stats().corrupted;
    assert!(corrupted > 0, "BER must have corrupted some frames");
}

#[test]
fn udp_goodput_survives_loss_with_rll() {
    let mut world = World::new(31);
    let (a, b, _, _) = rll_pair(
        &mut world,
        LinkConfig::fast_ethernet().errors(ErrorModel::lossy(0.1)),
        RllConfig::default(),
    );
    let sink = world.add_protocol(
        b,
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(9)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(b),
        world.host_ip(b),
        9,
        9000,
        10_000_000,
        1000,
        200_000,
    );
    world.add_protocol(a, Binding::EtherType(EtherType::IPV4), Box::new(flooder));
    world.run_for(SimDuration::from_secs(2));
    let sink = world.protocol::<UdpSink>(b, sink).unwrap();
    assert_eq!(sink.frames(), 200, "RLL must mask the 10% link loss");
}

#[test]
fn broadcast_bypasses_the_arq() {
    let mut world = World::new(41);
    let (a, b, ha, _) = rll_pair(
        &mut world,
        LinkConfig::fast_ethernet(),
        RllConfig::default(),
    );
    let rec = world.add_protocol(b, Binding::All, Box::new(TagRecorder::default()));
    world.inject_from_stack(a, tag_frame(world.host_mac(a), MacAddr::BROADCAST, 9));
    world.run_for(SimDuration::from_millis(10));
    assert_eq!(world.protocol::<TagRecorder>(b, rec).unwrap().tags, vec![9]);
    let stats = world.hook::<RllHook>(a, ha).unwrap().stats();
    assert_eq!(stats.bypassed, 1);
    assert_eq!(stats.accepted, 0);
}

#[test]
fn gives_up_after_max_retries_on_dead_link() {
    let mut world = World::new(51);
    let (a, b, ha, _) = rll_pair(
        &mut world,
        LinkConfig::fast_ethernet().errors(ErrorModel::lossy(1.0)),
        RllConfig {
            max_retries: 3,
            rto: SimDuration::from_millis(1),
            ..RllConfig::default()
        },
    );
    let _ = b;
    world.inject_from_stack(a, tag_frame(world.host_mac(a), world.host_mac(b), 1));
    world.run_for(SimDuration::from_millis(100));
    let stats = world.hook::<RllHook>(a, ha).unwrap().stats();
    assert_eq!(stats.gave_up, 1);
    // 1 original + 3 retries.
    assert_eq!(stats.data_sent, 4);
    assert_eq!(stats.retransmissions, 3);
}

#[test]
fn stats_account_for_duplicates() {
    // Duplicate delivery at the receiver is created by ack loss: the sender
    // retransmits data the receiver already has.
    let mut world = World::new(61);
    let a = world.add_host("a");
    let b = world.add_host("b");
    // Lossy only b→a so ACKs die but data arrives.
    let mut cfg = LinkConfig::fast_ethernet();
    cfg.error_b_to_a = ErrorModel::lossy(0.8);
    world.connect(a, b, cfg);
    let _ha = world.add_hook(
        a,
        Box::new(RllHook::new(RllConfig {
            max_retries: 200,
            ..RllConfig::default()
        })),
    );
    let hb = world.add_hook(b, Box::new(RllHook::new(RllConfig::default())));
    let rec = world.add_protocol(b, Binding::All, Box::new(TagRecorder::default()));
    for i in 0..20 {
        world.inject_from_stack(a, tag_frame(world.host_mac(a), world.host_mac(b), i));
    }
    world.run_for(SimDuration::from_secs(5));
    let tags = &world.protocol::<TagRecorder>(b, rec).unwrap().tags;
    assert_eq!(
        *tags,
        (0..20).collect::<Vec<u8>>(),
        "no dup ever delivered up"
    );
    let stats = world.hook::<RllHook>(b, hb).unwrap().stats();
    assert!(
        stats.discarded > 0,
        "ack loss must cause discarded duplicates"
    );
    assert_eq!(stats.delivered, 20);
}

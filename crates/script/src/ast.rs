//! The scenario-script AST and its canonical printer.
//!
//! A script is a list of timed directives, one per line. The printer
//! emits the canonical form the parser accepts, and
//! `parse(print(script)) == script` holds for every well-formed AST
//! (pinned by a property test), so scripts can be stored, diffed, and
//! regenerated losslessly.

use std::fmt;
use std::fmt::Write as _;

/// A parsed scenario script: timed directives in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    /// The directives, in source order.
    pub directives: Vec<Directive>,
}

/// One timed directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// When the directive applies.
    pub window: Window,
    /// What it does.
    pub op: Op,
}

/// A point in time (`@10ms`) or a tolerance window (`@10ms..20ms`),
/// in simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start (inclusive), nanoseconds.
    pub start: u64,
    /// Window end (inclusive), nanoseconds; `None` for a point in time.
    pub end: Option<u64>,
}

impl Window {
    /// A point window at `start` nanoseconds.
    pub fn at(start: u64) -> Self {
        Window { start, end: None }
    }

    /// A tolerance window `[start, end]` in nanoseconds.
    pub fn span(start: u64, end: u64) -> Self {
        Window {
            start,
            end: Some(end),
        }
    }

    /// The window's inclusive upper bound (`start` for a point window).
    pub fn close(&self) -> u64 {
        self.end.unwrap_or(self.start)
    }

    /// `true` if `nanos` falls inside the window.
    pub fn contains(&self, nanos: u64) -> bool {
        self.start <= nanos && nanos <= self.close()
    }
}

/// The directive's operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Inject a frame at a node at the window's start time.
    Inject {
        /// Which side of the engine the frame enters from.
        layer: Layer,
        /// Node name (resolved against the FSL node table).
        node: String,
        /// The frame to inject.
        frame: FrameSpec,
    },
    /// Require at least one matching frame at the node inside the
    /// window.
    Expect {
        /// Stack-level direction to match.
        dir: ExpectDir,
        /// Node name.
        node: String,
        /// The frame predicate.
        matcher: Matcher,
    },
    /// Require that *no* matching frame appears at the node inside the
    /// window.
    ExpectNone {
        /// Stack-level direction to match.
        dir: ExpectDir,
        /// Node name.
        node: String,
        /// The frame predicate.
        matcher: Matcher,
    },
    /// Require a scenario counter to satisfy a comparison at the
    /// window's start time.
    AssertCounter {
        /// Counter name (resolved against the FSL counter table).
        counter: String,
        /// The comparison.
        op: CmpOp,
        /// The right-hand side.
        value: i64,
    },
}

/// Where an injected frame enters the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// As if the node's own stack sent it (runs the outbound hook
    /// chain, then the wire).
    Stack,
    /// As if it arrived off the wire (runs the inbound path).
    Wire,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Stack => "stack",
            Layer::Wire => "wire",
        })
    }
}

/// Which stack-level frame events an expectation observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectDir {
    /// Frames the node's stack handed to the wire.
    Send,
    /// Frames delivered up to the node's stack.
    Recv,
}

impl fmt::Display for ExpectDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExpectDir::Send => "send",
            ExpectDir::Recv => "recv",
        })
    }
}

/// What to inject: raw bytes or a built UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameSpec {
    /// A raw Ethernet frame, given as hex bytes (validated to a
    /// well-formed frame at install time).
    Hex(Vec<u8>),
    /// A UDP datagram built from the node table's addresses.
    Udp {
        /// Source node name (MAC + IP from the node table).
        src: String,
        /// Destination node name.
        dst: String,
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
        /// Datagram payload.
        payload: Vec<u8>,
    },
}

/// A frame predicate: a protocol selector plus field atoms, all of
/// which must hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matcher {
    /// Protocol selector.
    pub proto: Proto,
    /// Field atoms (conjunction).
    pub atoms: Vec<Atom>,
}

/// Protocol selector of a [`Matcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Any frame.
    Any,
    /// IPv4/UDP frames only.
    Udp,
    /// IPv4/TCP frames only.
    Tcp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proto::Any => "any",
            Proto::Udp => "udp",
            Proto::Tcp => "tcp",
        })
    }
}

/// One field predicate of a [`Matcher`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// Transport source port comparison.
    Sport(CmpOp, u16),
    /// Transport destination port comparison.
    Dport(CmpOp, u16),
    /// Whole-frame length comparison (bytes).
    Len(CmpOp, u32),
    /// Transport payload must contain these bytes as a subslice.
    PayloadContains(Vec<u8>),
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn eval<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Lt => lhs < rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
        })
    }
}

/// Renders `nanos` in the largest time unit that divides it exactly
/// (`1s`, `250ms`, `75us`, `123ns`).
fn write_time(out: &mut String, nanos: u64) {
    if nanos.is_multiple_of(1_000_000_000) {
        let _ = write!(out, "{}s", nanos / 1_000_000_000);
    } else if nanos.is_multiple_of(1_000_000) {
        let _ = write!(out, "{}ms", nanos / 1_000_000);
    } else if nanos.is_multiple_of(1_000) {
        let _ = write!(out, "{}us", nanos / 1_000);
    } else {
        let _ = write!(out, "{nanos}ns");
    }
}

fn write_hex(out: &mut String, bytes: &[u8]) {
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
}

fn write_matcher(out: &mut String, matcher: &Matcher) {
    let _ = write!(out, "{}", matcher.proto);
    for atom in &matcher.atoms {
        match atom {
            Atom::Sport(op, v) => {
                let _ = write!(out, " sport {op} {v}");
            }
            Atom::Dport(op, v) => {
                let _ = write!(out, " dport {op} {v}");
            }
            Atom::Len(op, v) => {
                let _ = write!(out, " len {op} {v}");
            }
            Atom::PayloadContains(bytes) => {
                out.push_str(" payload-contains-hex ");
                write_hex(out, bytes);
            }
        }
    }
}

impl Script {
    /// Renders the script in its canonical textual form: one directive
    /// per line, canonical time units, lowercase hex, decimal numbers.
    /// The output parses back to an equal AST.
    pub fn print(&self) -> String {
        let mut out = String::new();
        for directive in &self.directives {
            out.push('@');
            write_time(&mut out, directive.window.start);
            if let Some(end) = directive.window.end {
                out.push_str("..");
                write_time(&mut out, end);
            }
            out.push(' ');
            match &directive.op {
                Op::Inject { layer, node, frame } => {
                    let _ = write!(out, "inject {layer} {node} ");
                    match frame {
                        FrameSpec::Hex(bytes) => {
                            out.push_str("hex ");
                            write_hex(&mut out, bytes);
                        }
                        FrameSpec::Udp {
                            src,
                            dst,
                            sport,
                            dport,
                            payload,
                        } => {
                            let _ = write!(out, "udp {src} -> {dst} sport {sport} dport {dport}");
                            if !payload.is_empty() {
                                out.push_str(" payload-hex ");
                                write_hex(&mut out, payload);
                            }
                        }
                    }
                }
                Op::Expect { dir, node, matcher } => {
                    let _ = write!(out, "expect {dir} {node} ");
                    write_matcher(&mut out, matcher);
                }
                Op::ExpectNone { dir, node, matcher } => {
                    let _ = write!(out, "expect-none {dir} {node} ");
                    write_matcher(&mut out, matcher);
                }
                Op::AssertCounter { counter, op, value } => {
                    let _ = write!(out, "assert-counter {counter} {op} {value}");
                }
            }
            out.push('\n');
        }
        out
    }
}

//! Packetdrill-style scripted stimulus and expectation checking for
//! VirtualWire runs.
//!
//! Where FSL (the paper's fault-specification language) reacts to the
//! traffic a protocol generates, a *scenario script* drives the run
//! from outside: timed frame injections, time-windowed expectations
//! about what each node must (or must not) see, and counter assertions
//! — the packetdrill idea transplanted onto the deterministic
//! simulator. A script is plain text, one directive per line:
//!
//! ```text
//! # stimulus: a scripted datagram enters node1's stack at t=10ms
//! @10ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 68690a
//! # node2 must see it within a 5ms tolerance window
//! @10ms..15ms expect recv node2 udp dport == 25443 payload-contains-hex 6869
//! # and nothing UDP may reach node2 after 40ms
//! @40ms..1s expect-none recv node2 udp any
//! # the scenario's Sent counter must have reached 3 by t=50ms
//! @50ms assert-counter Sent >= 3
//! ```
//!
//! (The `any` above is part of a second matcher example — a matcher is
//! a protocol selector `any`/`udp`/`tcp` followed by field atoms.)
//!
//! The lifecycle is three calls:
//!
//! 1. [`Script::parse`] — text to AST, typed [`ScriptParseError`]s,
//!    no panics. [`Script::print`] is the canonical inverse.
//! 2. [`install`] — schedule every `inject` into the
//!    [`World`](vw_netsim::World) *before* the run; injections ride the
//!    event queue's deterministic order.
//! 3. [`evaluate`] — after the run, judge every expectation against
//!    the packet trace and the report, producing typed
//!    [`ScriptVerdict`]s with the observed frame and the node's active
//!    flight-recorder cascade attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod parse;
mod run;

pub use ast::{
    Atom, CmpOp, Directive, ExpectDir, FrameSpec, Layer, Matcher, Op, Proto, Script, Window,
};
pub use parse::{ParseErrorKind, ScriptParseError};
pub use run::{evaluate, install, ScriptInstallError, ScriptVerdict};

//! The script parser: line-oriented, hand-rolled, panic-free.
//!
//! Every failure is a typed [`ScriptParseError`] carrying the
//! one-based source line and a [`ParseErrorKind`]; truncated or garbage
//! input can never panic (pinned by a property test).

use std::error::Error;
use std::fmt;

use crate::ast::{
    Atom, CmpOp, Directive, ExpectDir, FrameSpec, Layer, Matcher, Op, Proto, Script, Window,
};

/// Why a script line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line does not start with an `@time` stamp.
    MissingTime,
    /// The time stamp is malformed (bad number, unknown unit, overflow,
    /// or a window whose end precedes its start).
    BadTime,
    /// The directive keyword is not one of `inject` / `expect` /
    /// `expect-none` / `assert-counter`.
    UnknownDirective,
    /// The line ended where another token was required.
    UnexpectedEnd,
    /// A numeric field is malformed or out of range.
    BadNumber,
    /// A hex byte string is empty, odd-length, or not hex.
    BadHex,
    /// A keyword or operator token was not recognized where it stood.
    UnknownToken,
    /// Well-formed directive followed by extra tokens.
    Trailing,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParseErrorKind::MissingTime => "missing @time",
            ParseErrorKind::BadTime => "bad time",
            ParseErrorKind::UnknownDirective => "unknown directive",
            ParseErrorKind::UnexpectedEnd => "unexpected end of line",
            ParseErrorKind::BadNumber => "bad number",
            ParseErrorKind::BadHex => "bad hex",
            ParseErrorKind::UnknownToken => "unknown token",
            ParseErrorKind::Trailing => "trailing tokens",
        })
    }
}

/// A parse failure: where, what kind, and a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptParseError {
    /// One-based source line.
    pub line: usize,
    /// The failure class.
    pub kind: ParseErrorKind,
    /// Specifics (the offending token, the valid range, ...).
    pub message: String,
}

impl fmt::Display for ScriptParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}: {}", self.line, self.kind, self.message)
    }
}

impl Error for ScriptParseError {}

fn perr(line: usize, kind: ParseErrorKind, message: impl Into<String>) -> ScriptParseError {
    ScriptParseError {
        line,
        kind,
        message: message.into(),
    }
}

/// Token cursor over one line, tracking the source line for errors.
struct Cursor<'a> {
    tokens: Vec<&'a str>,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self, what: &str) -> Result<&'a str, ScriptParseError> {
        match self.tokens.get(self.pos) {
            Some(&token) => {
                self.pos += 1;
                Ok(token)
            }
            None => Err(perr(
                self.line,
                ParseErrorKind::UnexpectedEnd,
                format!("expected {what}"),
            )),
        }
    }

    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).copied()
    }

    fn done(&self) -> Result<(), ScriptParseError> {
        match self.tokens.get(self.pos) {
            Some(&token) => Err(perr(
                self.line,
                ParseErrorKind::Trailing,
                format!("unexpected {token:?} after directive"),
            )),
            None => Ok(()),
        }
    }
}

fn parse_time(line: usize, token: &str) -> Result<u64, ScriptParseError> {
    let (digits, unit) = token
        .char_indices()
        .find(|&(_, c)| !c.is_ascii_digit())
        .map(|(i, _)| token.split_at(i))
        .unwrap_or((token, ""));
    let scale: u64 = match unit {
        "ns" => 1,
        "us" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        _ => {
            return Err(perr(
                line,
                ParseErrorKind::BadTime,
                format!("unknown time unit in {token:?} (ns/us/ms/s)"),
            ))
        }
    };
    let value: u64 = digits.parse().map_err(|_| {
        perr(
            line,
            ParseErrorKind::BadTime,
            format!("bad time value {token:?}"),
        )
    })?;
    value.checked_mul(scale).ok_or_else(|| {
        perr(
            line,
            ParseErrorKind::BadTime,
            format!("time {token:?} overflows"),
        )
    })
}

fn parse_window(line: usize, token: &str) -> Result<Window, ScriptParseError> {
    let stamp = token.strip_prefix('@').ok_or_else(|| {
        perr(
            line,
            ParseErrorKind::MissingTime,
            format!("directive must start with @time, got {token:?}"),
        )
    })?;
    match stamp.split_once("..") {
        None => Ok(Window::at(parse_time(line, stamp)?)),
        Some((a, b)) => {
            let start = parse_time(line, a)?;
            let end = parse_time(line, b)?;
            if end < start {
                return Err(perr(
                    line,
                    ParseErrorKind::BadTime,
                    format!("window end {b} precedes start {a}"),
                ));
            }
            Ok(Window::span(start, end))
        }
    }
}

fn parse_u64(line: usize, token: &str) -> Result<u64, ScriptParseError> {
    let parsed = match token.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => token.parse(),
    };
    parsed.map_err(|_| {
        perr(
            line,
            ParseErrorKind::BadNumber,
            format!("bad number {token:?}"),
        )
    })
}

fn parse_u16(line: usize, token: &str) -> Result<u16, ScriptParseError> {
    let value = parse_u64(line, token)?;
    u16::try_from(value).map_err(|_| {
        perr(
            line,
            ParseErrorKind::BadNumber,
            format!("{token:?} exceeds u16 range"),
        )
    })
}

fn parse_i64(line: usize, token: &str) -> Result<i64, ScriptParseError> {
    let (negative, digits) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = parse_u64(line, digits)?;
    let value = i64::try_from(value).map_err(|_| {
        perr(
            line,
            ParseErrorKind::BadNumber,
            format!("{token:?} out of range"),
        )
    })?;
    Ok(if negative { -value } else { value })
}

fn parse_hex(line: usize, token: &str) -> Result<Vec<u8>, ScriptParseError> {
    if token.is_empty() || !token.len().is_multiple_of(2) {
        return Err(perr(
            line,
            ParseErrorKind::BadHex,
            format!("hex bytes must be non-empty and even-length, got {token:?}"),
        ));
    }
    let mut bytes = Vec::with_capacity(token.len() / 2);
    for pair in token.as_bytes().chunks(2) {
        let byte = std::str::from_utf8(pair)
            .ok()
            .and_then(|s| u8::from_str_radix(s, 16).ok())
            .ok_or_else(|| {
                perr(
                    line,
                    ParseErrorKind::BadHex,
                    format!("non-hex in {token:?}"),
                )
            })?;
        bytes.push(byte);
    }
    Ok(bytes)
}

fn parse_cmp(line: usize, token: &str) -> Result<CmpOp, ScriptParseError> {
    match token {
        "==" => Ok(CmpOp::Eq),
        "!=" => Ok(CmpOp::Ne),
        ">=" => Ok(CmpOp::Ge),
        "<=" => Ok(CmpOp::Le),
        ">" => Ok(CmpOp::Gt),
        "<" => Ok(CmpOp::Lt),
        _ => Err(perr(
            line,
            ParseErrorKind::UnknownToken,
            format!("expected comparison operator, got {token:?}"),
        )),
    }
}

fn parse_matcher(cursor: &mut Cursor<'_>) -> Result<Matcher, ScriptParseError> {
    let line = cursor.line;
    let proto = match cursor.next("protocol (any/udp/tcp)")? {
        "any" => Proto::Any,
        "udp" => Proto::Udp,
        "tcp" => Proto::Tcp,
        other => {
            return Err(perr(
                line,
                ParseErrorKind::UnknownToken,
                format!("expected any/udp/tcp, got {other:?}"),
            ))
        }
    };
    let mut atoms = Vec::new();
    while let Some(keyword) = cursor.peek() {
        cursor.pos += 1;
        match keyword {
            "sport" => {
                let op = parse_cmp(line, cursor.next("comparison")?)?;
                let value = parse_u16(line, cursor.next("port")?)?;
                atoms.push(Atom::Sport(op, value));
            }
            "dport" => {
                let op = parse_cmp(line, cursor.next("comparison")?)?;
                let value = parse_u16(line, cursor.next("port")?)?;
                atoms.push(Atom::Dport(op, value));
            }
            "len" => {
                let op = parse_cmp(line, cursor.next("comparison")?)?;
                let value = parse_u64(line, cursor.next("length")?)?;
                let value = u32::try_from(value).map_err(|_| {
                    perr(line, ParseErrorKind::BadNumber, "length exceeds u32 range")
                })?;
                atoms.push(Atom::Len(op, value));
            }
            "payload-contains-hex" => {
                let bytes = parse_hex(line, cursor.next("hex bytes")?)?;
                atoms.push(Atom::PayloadContains(bytes));
            }
            other => {
                return Err(perr(
                    line,
                    ParseErrorKind::UnknownToken,
                    format!("expected sport/dport/len/payload-contains-hex, got {other:?}"),
                ))
            }
        }
    }
    Ok(Matcher { proto, atoms })
}

fn parse_expect_dir(line: usize, token: &str) -> Result<ExpectDir, ScriptParseError> {
    match token {
        "send" => Ok(ExpectDir::Send),
        "recv" => Ok(ExpectDir::Recv),
        other => Err(perr(
            line,
            ParseErrorKind::UnknownToken,
            format!("expected send/recv, got {other:?}"),
        )),
    }
}

fn parse_inject(cursor: &mut Cursor<'_>) -> Result<Op, ScriptParseError> {
    let line = cursor.line;
    let layer = match cursor.next("layer (stack/wire)")? {
        "stack" => Layer::Stack,
        "wire" => Layer::Wire,
        other => {
            return Err(perr(
                line,
                ParseErrorKind::UnknownToken,
                format!("expected stack/wire, got {other:?}"),
            ))
        }
    };
    let node = cursor.next("node name")?.to_string();
    let frame = match cursor.next("frame spec (hex/udp)")? {
        "hex" => FrameSpec::Hex(parse_hex(line, cursor.next("hex bytes")?)?),
        "udp" => {
            let src = cursor.next("source node")?.to_string();
            let arrow = cursor.next("->")?;
            if arrow != "->" {
                return Err(perr(
                    line,
                    ParseErrorKind::UnknownToken,
                    format!("expected ->, got {arrow:?}"),
                ));
            }
            let dst = cursor.next("destination node")?.to_string();
            let mut sport = 0u16;
            let mut dport = 0u16;
            let mut payload = Vec::new();
            while let Some(keyword) = cursor.peek() {
                cursor.pos += 1;
                match keyword {
                    "sport" => sport = parse_u16(line, cursor.next("port")?)?,
                    "dport" => dport = parse_u16(line, cursor.next("port")?)?,
                    "payload-hex" => payload = parse_hex(line, cursor.next("hex bytes")?)?,
                    other => {
                        return Err(perr(
                            line,
                            ParseErrorKind::UnknownToken,
                            format!("expected sport/dport/payload-hex, got {other:?}"),
                        ))
                    }
                }
            }
            FrameSpec::Udp {
                src,
                dst,
                sport,
                dport,
                payload,
            }
        }
        other => {
            return Err(perr(
                line,
                ParseErrorKind::UnknownToken,
                format!("expected hex/udp frame spec, got {other:?}"),
            ))
        }
    };
    Ok(Op::Inject { layer, node, frame })
}

impl Script {
    /// Parses a script: one directive per line, `#` comments and blank
    /// lines ignored.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScriptParseError`] encountered. Never
    /// panics, whatever the input.
    pub fn parse(source: &str) -> Result<Script, ScriptParseError> {
        let mut directives = Vec::new();
        for (i, raw) in source.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cursor = Cursor {
                tokens: line.split_whitespace().collect(),
                pos: 0,
                line: i + 1,
            };
            let lineno = cursor.line;
            let window = parse_window(lineno, cursor.next("@time")?)?;
            let op = match cursor.next("directive keyword")? {
                "inject" => parse_inject(&mut cursor)?,
                "expect" => Op::Expect {
                    dir: parse_expect_dir(lineno, cursor.next("direction")?)?,
                    node: cursor.next("node name")?.to_string(),
                    matcher: parse_matcher(&mut cursor)?,
                },
                "expect-none" => Op::ExpectNone {
                    dir: parse_expect_dir(lineno, cursor.next("direction")?)?,
                    node: cursor.next("node name")?.to_string(),
                    matcher: parse_matcher(&mut cursor)?,
                },
                "assert-counter" => {
                    let counter = cursor.next("counter name")?.to_string();
                    let op = parse_cmp(lineno, cursor.next("comparison")?)?;
                    let value = parse_i64(lineno, cursor.next("value")?)?;
                    Op::AssertCounter { counter, op, value }
                }
                other => {
                    return Err(perr(
                        lineno,
                        ParseErrorKind::UnknownDirective,
                        format!("expected inject/expect/expect-none/assert-counter, got {other:?}"),
                    ))
                }
            };
            cursor.done()?;
            directives.push(Directive { window, op });
        }
        Ok(Script { directives })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips_a_representative_script() {
        let src = r#"
            # stimulus
            @10ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 68690a
            @15ms inject wire node2 hex ffffffffffff0200000000010800
            # expectations
            @10ms..15ms expect recv node2 udp dport == 25443 payload-contains-hex 6869
            @40ms..1s expect-none recv node2 udp sport != 9 len >= 40
            @50ms expect send node1 any
            @50ms assert-counter Sent >= 3
            @75us assert-counter Bal == -2
        "#;
        let script = Script::parse(src).expect("parses");
        assert_eq!(script.directives.len(), 7);
        let printed = script.print();
        let reparsed =
            Script::parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(script, reparsed, "print -> parse must be the identity");
        // Canonical time units survive.
        assert!(printed.contains("@10ms..15ms"), "{printed}");
        assert!(printed.contains("@75us"), "{printed}");
    }

    #[test]
    fn times_accept_all_units_and_normalize() {
        let script = Script::parse("@1500000ns expect recv n any\n").unwrap();
        assert_eq!(script.directives[0].window.start, 1_500_000);
        assert!(script.print().starts_with("@1500us "), "{}", script.print());
    }

    #[test]
    fn hex_numbers_parse_in_ports() {
        let script = Script::parse("@0s expect recv n udp dport == 0x6363\n").unwrap();
        assert_eq!(
            script.directives[0].op,
            Op::Expect {
                dir: ExpectDir::Recv,
                node: "n".into(),
                matcher: Matcher {
                    proto: Proto::Udp,
                    atoms: vec![Atom::Dport(CmpOp::Eq, 0x6363)],
                },
            }
        );
    }

    #[test]
    fn errors_carry_line_and_kind() {
        let cases: &[(&str, usize, ParseErrorKind)] = &[
            ("expect recv n any", 1, ParseErrorKind::MissingTime),
            ("@10xs expect recv n any", 1, ParseErrorKind::BadTime),
            ("@20ms..10ms expect recv n any", 1, ParseErrorKind::BadTime),
            ("\n\n@1ms frobnicate n", 3, ParseErrorKind::UnknownDirective),
            ("@1ms expect recv n", 1, ParseErrorKind::UnexpectedEnd),
            (
                "@1ms expect recv n udp sport == 70000",
                1,
                ParseErrorKind::BadNumber,
            ),
            ("@1ms inject stack n hex 123", 1, ParseErrorKind::BadHex),
            ("@1ms inject stack n hex zz", 1, ParseErrorKind::BadHex),
            (
                "@1ms expect sideways n any",
                1,
                ParseErrorKind::UnknownToken,
            ),
            (
                "@1ms assert-counter C == 3 extra",
                1,
                ParseErrorKind::Trailing,
            ),
        ];
        for &(src, line, kind) in cases {
            let err = Script::parse(src).expect_err(src);
            assert_eq!(err.line, line, "{src}: {err}");
            assert_eq!(err.kind, kind, "{src}: {err}");
        }
    }

    #[test]
    fn udp_inject_defaults_and_negative_counters() {
        let script =
            Script::parse("@1ms inject stack a udp a -> b\n@2ms assert-counter V == -7\n").unwrap();
        assert_eq!(
            script.directives[0].op,
            Op::Inject {
                layer: Layer::Stack,
                node: "a".into(),
                frame: FrameSpec::Udp {
                    src: "a".into(),
                    dst: "b".into(),
                    sport: 0,
                    dport: 0,
                    payload: vec![],
                },
            }
        );
        assert_eq!(
            script.directives[1].op,
            Op::AssertCounter {
                counter: "V".into(),
                op: CmpOp::Eq,
                value: -7,
            }
        );
    }
}

//! Script execution: timed injections into the simulator, offline
//! expectation checking against the packet trace, and typed verdicts.
//!
//! Injections are scheduled before the run via the netsim timed
//! endpoints ([`World::inject_from_stack_at`] /
//! [`World::inject_from_wire_at`]), so they participate in the event
//! queue's deterministic FIFO-within-timestamp order like any other
//! traffic. Expectations are evaluated *after* the run against the
//! [`TraceSink`](vw_netsim::TraceSink)'s full-frame records and the
//! report's flight-recorder stream — the script never perturbs the run
//! it is judging.

use std::error::Error;
use std::fmt;

use virtualwire::Report;
use vw_fsl::TableSet;
use vw_netsim::{SimTime, TraceKind, World};
use vw_obs::ObsEvent;
use vw_packet::{Frame, UdpBuilder};

use crate::ast::{CmpOp, ExpectDir, FrameSpec, Layer, Matcher, Op, Proto, Script};

/// A directive that cannot be bound to the testbed (unknown node,
/// malformed frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptInstallError {
    /// Index of the offending directive in [`Script::directives`].
    pub directive: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptInstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "directive {}: {}", self.directive, self.message)
    }
}

impl Error for ScriptInstallError {}

/// The outcome of one checking directive.
#[derive(Debug, Clone)]
pub enum ScriptVerdict {
    /// The expectation held.
    Pass {
        /// Index of the directive in [`Script::directives`].
        directive: usize,
    },
    /// An `expect` found no matching frame at the node, ever.
    MissingExpected {
        /// Index of the directive.
        directive: usize,
    },
    /// An `expect-none` saw a matching frame inside its window.
    UnexpectedFrame {
        /// Index of the directive.
        directive: usize,
        /// When the offending frame was observed.
        time: SimTime,
        /// The observed frame.
        frame: Frame,
        /// The flight-recorder cascade active at the node when the
        /// frame appeared (empty when observability was off).
        causal: Vec<ObsEvent>,
    },
    /// An `expect` found a matching frame, but only outside its window.
    TimingViolation {
        /// Index of the directive.
        directive: usize,
        /// When the nearest matching frame was observed.
        time: SimTime,
        /// The observed frame.
        frame: Frame,
        /// The flight-recorder cascade active at the node when the
        /// frame appeared (empty when observability was off).
        causal: Vec<ObsEvent>,
    },
    /// An `assert-counter` comparison failed (or the counter does not
    /// exist).
    CounterMismatch {
        /// Index of the directive.
        directive: usize,
        /// Counter name.
        counter: String,
        /// The observed value, if the counter exists.
        observed: Option<i64>,
    },
}

impl ScriptVerdict {
    /// `true` for [`ScriptVerdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, ScriptVerdict::Pass { .. })
    }

    /// The directive index the verdict refers to.
    pub fn directive(&self) -> usize {
        match *self {
            ScriptVerdict::Pass { directive }
            | ScriptVerdict::MissingExpected { directive }
            | ScriptVerdict::UnexpectedFrame { directive, .. }
            | ScriptVerdict::TimingViolation { directive, .. }
            | ScriptVerdict::CounterMismatch { directive, .. } => directive,
        }
    }

    /// Short class label, stable across runs (`pass`,
    /// `missing-expected`, `unexpected-frame`, `timing-violation`,
    /// `counter-mismatch`).
    pub fn label(&self) -> &'static str {
        match self {
            ScriptVerdict::Pass { .. } => "pass",
            ScriptVerdict::MissingExpected { .. } => "missing-expected",
            ScriptVerdict::UnexpectedFrame { .. } => "unexpected-frame",
            ScriptVerdict::TimingViolation { .. } => "timing-violation",
            ScriptVerdict::CounterMismatch { .. } => "counter-mismatch",
        }
    }
}

impl fmt::Display for ScriptVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptVerdict::Pass { directive } => write!(f, "directive {directive}: pass"),
            ScriptVerdict::MissingExpected { directive } => {
                write!(f, "directive {directive}: missing expected frame")
            }
            ScriptVerdict::UnexpectedFrame {
                directive,
                time,
                frame,
                causal,
            } => write!(
                f,
                "directive {directive}: unexpected {}-byte frame at {time} ({} causal events)",
                frame.len(),
                causal.len()
            ),
            ScriptVerdict::TimingViolation {
                directive,
                time,
                frame,
                causal,
            } => write!(
                f,
                "directive {directive}: timing violation — matching {}-byte frame at {time}, \
                 outside the window ({} causal events)",
                frame.len(),
                causal.len()
            ),
            ScriptVerdict::CounterMismatch {
                directive,
                counter,
                observed,
            } => match observed {
                Some(v) => write!(f, "directive {directive}: counter {counter} was {v}"),
                None => write!(f, "directive {directive}: counter {counter} not found"),
            },
        }
    }
}

/// Schedules every `inject` directive of `script` into `world`.
///
/// Node names resolve against the world's device registry (engine hosts
/// are created under their FSL node-table names); UDP frame specs pull
/// MAC/IP addresses from `tables`. Returns the number of scheduled
/// injections.
///
/// # Errors
///
/// Returns a [`ScriptInstallError`] for an unknown node name or a frame
/// spec that does not build a well-formed frame. Directives before the
/// failing one stay scheduled.
pub fn install(
    script: &Script,
    world: &mut World,
    tables: &TableSet,
) -> Result<usize, ScriptInstallError> {
    let mut scheduled = 0;
    for (i, directive) in script.directives.iter().enumerate() {
        let Op::Inject { layer, node, frame } = &directive.op else {
            continue;
        };
        let device = world
            .device_by_name(node)
            .ok_or_else(|| ScriptInstallError {
                directive: i,
                message: format!("unknown node {node:?}"),
            })?;
        let frame = build_frame(frame, tables).map_err(|message| ScriptInstallError {
            directive: i,
            message,
        })?;
        let at = SimTime::from_nanos(directive.window.start);
        match layer {
            Layer::Stack => world.inject_from_stack_at(device, frame, at),
            Layer::Wire => world.inject_from_wire_at(device, frame, at),
        }
        scheduled += 1;
    }
    Ok(scheduled)
}

fn build_frame(spec: &FrameSpec, tables: &TableSet) -> Result<Frame, String> {
    match spec {
        FrameSpec::Hex(bytes) => {
            Frame::from_bytes(bytes.clone()).map_err(|e| format!("bad hex frame: {e}"))
        }
        FrameSpec::Udp {
            src,
            dst,
            sport,
            dport,
            payload,
        } => {
            let src = lookup_node(tables, src)?;
            let dst = lookup_node(tables, dst)?;
            Ok(UdpBuilder::new()
                .src_mac(src.0)
                .src_ip(src.1)
                .dst_mac(dst.0)
                .dst_ip(dst.1)
                .src_port(*sport)
                .dst_port(*dport)
                .payload(payload)
                .build())
        }
    }
}

fn lookup_node(
    tables: &TableSet,
    name: &str,
) -> Result<(vw_packet::MacAddr, std::net::Ipv4Addr), String> {
    tables
        .nodes
        .iter()
        .find(|n| n.name == name)
        .map(|n| (n.mac, n.ip))
        .ok_or_else(|| format!("node {name:?} not in the node table"))
}

fn frame_matches(frame: &Frame, matcher: &Matcher) -> bool {
    match matcher.proto {
        Proto::Any => {}
        Proto::Udp => {
            if frame.udp().is_none() {
                return false;
            }
        }
        Proto::Tcp => {
            if frame.tcp().is_none() {
                return false;
            }
        }
    }
    matcher.atoms.iter().all(|atom| atom_matches(frame, atom))
}

fn ports(frame: &Frame) -> Option<(u16, u16)> {
    if let Some(udp) = frame.udp() {
        Some((udp.src_port(), udp.dst_port()))
    } else {
        frame.tcp().map(|tcp| (tcp.src_port(), tcp.dst_port()))
    }
}

fn l4_payload(frame: &Frame) -> &[u8] {
    if let Some(udp) = frame.udp() {
        udp.payload()
    } else if let Some(tcp) = frame.tcp() {
        tcp.payload()
    } else {
        frame.payload()
    }
}

fn atom_matches(frame: &Frame, atom: &crate::ast::Atom) -> bool {
    use crate::ast::Atom;
    match atom {
        Atom::Sport(op, v) => ports(frame).is_some_and(|(s, _)| op.eval(s, *v)),
        Atom::Dport(op, v) => ports(frame).is_some_and(|(_, d)| op.eval(d, *v)),
        Atom::Len(op, v) => op.eval(frame.len() as u32, *v),
        Atom::PayloadContains(needle) => {
            let hay = l4_payload(frame);
            !needle.is_empty()
                && hay
                    .windows(needle.len())
                    .any(|window| window == needle.as_slice())
        }
    }
}

/// The flight-recorder cascade active at `node` when a frame appeared
/// at `time`: the events sharing the `frame_seq` of the last event the
/// node's engine recorded at or before `time`. Empty when nothing was
/// recorded (observability off, or the frame predates all engine
/// activity).
fn causal_slice(report: &Report, tables: &TableSet, node: &str, time: SimTime) -> Vec<ObsEvent> {
    let Some(node_id) = tables.node_by_name(node) else {
        return Vec::new();
    };
    let anchor = report
        .events
        .iter()
        .filter(|e| e.node() == node_id && e.time() <= time)
        .max_by_key(|e| (e.time(), e.frame_seq()))
        .map(ObsEvent::frame_seq);
    let Some(frame_seq) = anchor else {
        return Vec::new();
    };
    report
        .events
        .iter()
        .filter(|e| e.node() == node_id && e.frame_seq() == frame_seq)
        .copied()
        .collect()
}

/// Evaluates every checking directive of `script` against a finished
/// run, returning one verdict per `expect` / `expect-none` /
/// `assert-counter` directive, in script order. `inject` directives
/// produce no verdict.
///
/// Frame expectations read the world's packet trace (full frames are
/// captured by default); counter assertions replay the report's
/// `CounterUpdated` events up to the directive's time, falling back to
/// the report's terminal counter values when the run recorded no
/// events. Unknown node names yield [`ScriptVerdict::MissingExpected`]
/// (there is nowhere to observe frames) and unknown counters yield
/// [`ScriptVerdict::CounterMismatch`] with no observed value.
pub fn evaluate(
    script: &Script,
    world: &World,
    tables: &TableSet,
    report: &Report,
) -> Vec<ScriptVerdict> {
    let mut verdicts = Vec::new();
    for (i, directive) in script.directives.iter().enumerate() {
        match &directive.op {
            Op::Inject { .. } => {}
            Op::Expect { dir, node, matcher } => {
                verdicts.push(eval_expect(
                    i, directive, *dir, node, matcher, false, world, tables, report,
                ));
            }
            Op::ExpectNone { dir, node, matcher } => {
                verdicts.push(eval_expect(
                    i, directive, *dir, node, matcher, true, world, tables, report,
                ));
            }
            Op::AssertCounter { counter, op, value } => {
                verdicts.push(eval_counter(
                    i, directive, counter, *op, *value, report, tables,
                ));
            }
        }
    }
    verdicts
}

#[allow(clippy::too_many_arguments)]
fn eval_expect(
    index: usize,
    directive: &crate::ast::Directive,
    dir: ExpectDir,
    node: &str,
    matcher: &Matcher,
    negated: bool,
    world: &World,
    tables: &TableSet,
    report: &Report,
) -> ScriptVerdict {
    let kind = match dir {
        ExpectDir::Send => TraceKind::HostSend,
        ExpectDir::Recv => TraceKind::HostRecv,
    };
    let device = world.device_by_name(node);
    let window = directive.window;
    let mut in_window: Option<(SimTime, Frame)> = None;
    let mut nearest: Option<(u64, SimTime, Frame)> = None;
    if let Some(device) = device {
        for record in world.trace().records() {
            if record.device != device || record.kind != kind {
                continue;
            }
            let Some(frame) = &record.frame else { continue };
            if !frame_matches(frame, matcher) {
                continue;
            }
            let nanos = record.time.as_nanos();
            if window.contains(nanos) {
                if in_window.is_none() {
                    in_window = Some((record.time, frame.clone()));
                }
                // The first in-window match settles a positive expect;
                // keep scanning only if a negative one needs the first
                // offender, which this already is.
                break;
            }
            let distance = if nanos < window.start {
                window.start - nanos
            } else {
                nanos - window.close()
            };
            if nearest.as_ref().is_none_or(|(d, _, _)| distance < *d) {
                nearest = Some((distance, record.time, frame.clone()));
            }
        }
    }
    if negated {
        match in_window {
            Some((time, frame)) => ScriptVerdict::UnexpectedFrame {
                directive: index,
                time,
                causal: causal_slice(report, tables, node, time),
                frame,
            },
            None => ScriptVerdict::Pass { directive: index },
        }
    } else {
        match (in_window, nearest) {
            (Some(_), _) => ScriptVerdict::Pass { directive: index },
            (None, Some((_, time, frame))) => ScriptVerdict::TimingViolation {
                directive: index,
                time,
                causal: causal_slice(report, tables, node, time),
                frame,
            },
            (None, None) => ScriptVerdict::MissingExpected { directive: index },
        }
    }
}

fn eval_counter(
    index: usize,
    directive: &crate::ast::Directive,
    counter: &str,
    op: CmpOp,
    value: i64,
    report: &Report,
    tables: &TableSet,
) -> ScriptVerdict {
    let at = SimTime::from_nanos(directive.window.close());
    let mut observed: Option<i64> = None;
    let mut any_update = false;
    if let Some(id) = tables.counter_by_name(counter) {
        let mut best: Option<(SimTime, i64)> = None;
        for event in &report.events {
            if let ObsEvent::CounterUpdated {
                time, counter, new, ..
            } = *event
            {
                if counter == id {
                    any_update = true;
                    if time <= at && best.is_none_or(|(t, _)| time >= t) {
                        best = Some((time, new));
                    }
                }
            }
        }
        if any_update {
            // Updates were recorded: the counter's value at `at` is the
            // latest update no later than it, or its initial 0 if every
            // update came after.
            observed = Some(best.map_or(0, |(_, v)| v));
        }
    }
    if !any_update {
        // No recorded updates (observability off, or an unscripted
        // counter): fall back to the terminal value the report carries.
        observed = report
            .counters
            .iter()
            .find(|(_, name, _)| name == counter)
            .map(|&(_, _, v)| v);
    }
    match observed {
        Some(actual) if op.eval(actual, value) => ScriptVerdict::Pass { directive: index },
        other => ScriptVerdict::CounterMismatch {
            directive: index,
            counter: counter.to_string(),
            observed: other,
        },
    }
}

//! Property tests for the scenario-script parser and printer.
//!
//! Two pinned guarantees:
//!
//! 1. `Script::parse(script.print()) == script` for every well-formed
//!    AST — the canonical printer is a lossless inverse of the parser.
//! 2. The parser never panics: arbitrary garbage, truncated canonical
//!    scripts, and byte-mutated canonical scripts all produce either a
//!    parse or a typed [`ScriptParseError`].

use proptest::prelude::*;
use vw_script::{
    Atom, CmpOp, Directive, ExpectDir, FrameSpec, Layer, Matcher, Op, Proto, Script, Window,
};

/// A plausible node/counter identifier. Names sit in blindly-consumed
/// token positions, so the only real constraint is "one token", but we
/// keep them identifier-shaped for readability of failure output.
fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(|s| s)
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Lt),
    ]
}

/// Non-empty byte strings: the grammar's hex fields reject empty.
fn bytes1() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..8)
}

fn window() -> impl Strategy<Value = Window> {
    (any::<u64>(), prop::option::of(any::<u64>())).prop_map(|(a, b)| match b {
        None => Window::at(a),
        Some(b) => Window::span(a.min(b), a.max(b)),
    })
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (cmp_op(), any::<u16>()).prop_map(|(op, v)| Atom::Sport(op, v)),
        (cmp_op(), any::<u16>()).prop_map(|(op, v)| Atom::Dport(op, v)),
        (cmp_op(), any::<u32>()).prop_map(|(op, v)| Atom::Len(op, v)),
        bytes1().prop_map(Atom::PayloadContains),
    ]
}

fn matcher() -> impl Strategy<Value = Matcher> {
    (
        prop_oneof![Just(Proto::Any), Just(Proto::Udp), Just(Proto::Tcp)],
        prop::collection::vec(atom(), 0..4),
    )
        .prop_map(|(proto, atoms)| Matcher { proto, atoms })
}

fn frame_spec() -> impl Strategy<Value = FrameSpec> {
    prop_oneof![
        bytes1().prop_map(FrameSpec::Hex),
        (
            ident(),
            ident(),
            any::<u16>(),
            any::<u16>(),
            prop::collection::vec(any::<u8>(), 0..8),
        )
            .prop_map(|(src, dst, sport, dport, payload)| FrameSpec::Udp {
                src,
                dst,
                sport,
                dport,
                payload,
            }),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop_oneof![Just(Layer::Stack), Just(Layer::Wire)],
            ident(),
            frame_spec(),
        )
            .prop_map(|(layer, node, frame)| Op::Inject { layer, node, frame }),
        (
            prop_oneof![Just(ExpectDir::Send), Just(ExpectDir::Recv)],
            ident(),
            matcher(),
        )
            .prop_map(|(dir, node, matcher)| Op::Expect { dir, node, matcher }),
        (
            prop_oneof![Just(ExpectDir::Send), Just(ExpectDir::Recv)],
            ident(),
            matcher(),
        )
            .prop_map(|(dir, node, matcher)| Op::ExpectNone { dir, node, matcher }),
        // i64::MIN is excluded: the grammar parses the magnitude as u64
        // first, so -(2^63) is out of the parseable domain.
        (ident(), cmp_op(), -i64::MAX..=i64::MAX)
            .prop_map(|(counter, op, value)| Op::AssertCounter { counter, op, value }),
    ]
}

fn script() -> impl Strategy<Value = Script> {
    prop::collection::vec(
        (window(), op()).prop_map(|(window, op)| Directive { window, op }),
        0..6,
    )
    .prop_map(|directives| Script { directives })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_then_parse_is_the_identity(script in script()) {
        let printed = script.print();
        let reparsed = Script::parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("canonical print rejected: {e}\n{printed}")))?;
        prop_assert_eq!(script, reparsed);
    }

    #[test]
    fn arbitrary_input_never_panics(src in any::<String>()) {
        // Typed result either way; the interesting property is "no panic".
        let _ = Script::parse(&src);
    }

    #[test]
    fn truncated_canonical_scripts_yield_typed_errors(
        script in script(),
        cut in any::<prop::sample::Index>(),
    ) {
        let printed = script.print();
        // Canonical output is pure ASCII, so any index is a char boundary.
        let end = cut.index(printed.len() + 1);
        match Script::parse(&printed[..end]) {
            Ok(_) => {} // cut landed on a line boundary
            Err(e) => prop_assert!(e.line >= 1, "error must locate a line: {e}"),
        }
    }

    #[test]
    fn byte_mutations_never_panic(
        script in script(),
        at in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let printed = script.print();
        if printed.is_empty() {
            return Ok(());
        }
        let mut bytes = printed.into_bytes();
        let i = at.index(bytes.len());
        bytes[i] = byte;
        let _ = Script::parse(&String::from_utf8_lossy(&bytes));
    }
}

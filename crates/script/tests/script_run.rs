//! End-to-end: a scenario script drives a real engine-instrumented run.
//!
//! The script injects two UDP datagrams into node1's stack; the FSL
//! scenario counts them (they traverse the engine hook chain like any
//! stack traffic) and stops the run after the second send. Expectations
//! are then judged against the packet trace, covering every verdict
//! class.

use virtualwire::{EngineConfig, Runner};
use vw_netsim::apps::UdpSink;
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_script::{evaluate, install, Script, ScriptVerdict};

const FSL: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO Scripted_Stimulus
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 2)) >> STOP;
    END
"#;

const SCRIPT: &str = r#"
    # two scripted datagrams; the scenario stops after the second send
    @1ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 6869
    @2ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 6a6b
    # the first datagram reaches node2 within a 500us tolerance window
    @1ms..1500us expect recv node2 udp dport == 25443 payload-contains-hex 6869
    # node1's stack handed matching frames to the wire
    @1ms..2100us expect send node1 udp dport == 25443
    # nothing TCP may reach node2, ever
    @0s..1s expect-none recv node2 tcp
    # the scenario counter saw both scripted sends ...
    @10ms assert-counter Sent == 2
    # ... but not five (deliberate mismatch)
    @10ms assert-counter Sent >= 5
    # deliberate timing violation: the datagrams exist, but at ~1-2ms
    @5ms..6ms expect recv node2 udp dport == 25443
    # deliberate miss: no such port anywhere
    @0s..1s expect recv node2 udp dport == 9999
"#;

#[test]
fn scripted_stimulus_drives_engine_and_yields_typed_verdicts() {
    let tables = virtualwire::compile_script(FSL).expect("FSL compiles");

    let mut world = World::new(7);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    let sink = world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );

    let script = Script::parse(SCRIPT).expect("script parses");
    let scheduled = install(&script, &mut world, runner.tables()).expect("installs");
    assert_eq!(scheduled, 2, "both inject directives scheduled");

    let report = runner.run(&mut world, SimDuration::from_secs(1));
    assert_eq!(
        report.counter("Sent"),
        Some(2),
        "engine counted the scripted sends"
    );

    let sink = world.protocol::<UdpSink>(nodes[1], sink).unwrap();
    assert!(
        sink.frames() >= 1,
        "at least the first datagram was delivered"
    );

    let verdicts = evaluate(&script, &world, runner.tables(), &report);
    let labels: Vec<&str> = verdicts.iter().map(ScriptVerdict::label).collect();
    assert_eq!(
        labels,
        [
            "pass",             // recv node2 within tolerance
            "pass",             // send node1
            "pass",             // expect-none tcp
            "pass",             // Sent == 2
            "counter-mismatch", // Sent >= 5
            "timing-violation", // right frame, wrong window
            "missing-expected", // no such port
        ]
    );

    // The mismatch carries the observed value.
    let ScriptVerdict::CounterMismatch {
        observed, counter, ..
    } = &verdicts[4]
    else {
        panic!("expected CounterMismatch, got {}", verdicts[4]);
    };
    assert_eq!(counter, "Sent");
    assert_eq!(*observed, Some(2));

    // The timing violation pins the nearest matching frame, which lives
    // around the 1-2ms injections — well before the 5ms window.
    let ScriptVerdict::TimingViolation { time, frame, .. } = &verdicts[5] else {
        panic!("expected TimingViolation, got {}", verdicts[5]);
    };
    assert!(
        time.as_nanos() < 5_000_000,
        "nearest match precedes the window"
    );
    assert_eq!(frame.udp().expect("udp frame").dst_port(), 25443);

    // Verdicts refer back to their directive index for reporting.
    assert_eq!(verdicts[5].directive(), 7);
    assert!(!verdicts[5].passed());
}

#[test]
fn install_rejects_unknown_nodes_with_directive_index() {
    let tables = virtualwire::compile_script(FSL).expect("FSL compiles");
    let mut world = World::new(1);
    let _nodes = Runner::create_hosts(&mut world, &tables);

    let script = Script::parse("@1ms inject stack ghost udp node1 -> node2 dport 25443\n").unwrap();
    let err = install(&script, &mut world, &tables).expect_err("unknown node");
    assert_eq!(err.directive, 0);
    assert!(err.message.contains("ghost"), "{err}");
}

#[test]
fn hex_injections_validate_frames_at_install_time() {
    let tables = virtualwire::compile_script(FSL).expect("FSL compiles");
    let mut world = World::new(1);
    let _nodes = Runner::create_hosts(&mut world, &tables);

    // 4 bytes is not a well-formed Ethernet frame.
    let script = Script::parse("@1ms inject wire node2 hex deadbeef\n").unwrap();
    let err = install(&script, &mut world, &tables).expect_err("short frame");
    assert_eq!(err.directive, 0);
}

//! TCP congestion control: slow start, congestion avoidance, fast
//! retransmit and fast recovery (RFC 5681), with the RTO reaction the
//! paper's Section 6.1 experiment depends on.

use vw_netsim::SimDuration;

/// Which congestion-control phase the sender is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcPhase {
    /// Exponential window growth: one MSS per ACK while `cwnd <= ssthresh`.
    SlowStart,
    /// Additive increase: one MSS per window's worth of ACKs.
    CongestionAvoidance,
    /// Between a fast retransmit and the ACK of new data.
    FastRecovery,
}

/// Congestion-control state, in bytes (window counters are byte-based with
/// ACK-counting additive increase, which matches the packet-counting model
/// in the paper's Figure 5 analysis script).
#[derive(Debug, Clone)]
pub struct Congestion {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    phase: CcPhase,
    /// Bytes acked since the last additive increase (congestion
    /// avoidance) — the paper script's `CCNT` counter.
    acked_since_increase: u32,
    dup_acks: u32,
    /// `cwnd` is restored to this on exiting fast recovery.
    recover_ssthresh: u32,
    /// If set, the implementation is deliberately broken: it never leaves
    /// slow start (used to demonstrate that the FAE catches the bug the
    /// Figure 5 script tests for).
    bug_never_enter_ca: bool,
}

impl Congestion {
    /// Creates state with an initial window of `initial_cwnd_mss`
    /// (RFC 5681 permits 1–4) and the given initial `ssthresh`.
    ///
    /// # Panics
    ///
    /// Panics if `mss` is zero.
    pub fn new(mss: u32, initial_cwnd_mss: u32, initial_ssthresh: u32) -> Self {
        assert!(mss > 0, "MSS must be positive");
        Congestion {
            mss,
            cwnd: mss * initial_cwnd_mss.max(1),
            ssthresh: initial_ssthresh,
            phase: CcPhase::SlowStart,
            acked_since_increase: 0,
            dup_acks: 0,
            recover_ssthresh: initial_ssthresh,
            bug_never_enter_ca: false,
        }
    }

    /// Enables the deliberate "never enter congestion avoidance" bug.
    pub fn set_bug_never_enter_ca(&mut self, enabled: bool) {
        self.bug_never_enter_ca = enabled;
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// Current phase.
    pub fn phase(&self) -> CcPhase {
        if self.phase == CcPhase::FastRecovery {
            return CcPhase::FastRecovery;
        }
        // Derived, matching RFC 5681's "cwnd <= ssthresh ⇒ slow start".
        if self.cwnd <= self.ssthresh {
            CcPhase::SlowStart
        } else {
            CcPhase::CongestionAvoidance
        }
    }

    /// Consecutive duplicate ACKs seen.
    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// Handles an ACK of `acked_bytes` of new data. Returns `true` if this
    /// ACK ended fast recovery.
    pub fn on_new_ack(&mut self, acked_bytes: u32) -> bool {
        self.dup_acks = 0;
        if self.phase == CcPhase::FastRecovery {
            // Full ACK: deflate to ssthresh and resume CA.
            self.cwnd = self.recover_ssthresh.max(self.mss);
            self.phase = CcPhase::CongestionAvoidance;
            self.acked_since_increase = 0;
            return true;
        }
        if self.bug_never_enter_ca || self.cwnd <= self.ssthresh {
            // Slow start: exponential growth.
            self.cwnd = self.cwnd.saturating_add(self.mss);
        } else {
            // Congestion avoidance: +1 MSS per cwnd of acked bytes — the
            // paper script's `CCNT > CWND` rule.
            self.phase = CcPhase::CongestionAvoidance;
            self.acked_since_increase = self.acked_since_increase.saturating_add(acked_bytes);
            if self.acked_since_increase >= self.cwnd {
                self.acked_since_increase -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
        false
    }

    /// Handles a duplicate ACK with `flight` bytes outstanding. Returns
    /// `true` when this is the third duplicate and the caller must fast-
    /// retransmit the lost segment.
    pub fn on_dup_ack(&mut self, flight: u32) -> bool {
        if self.phase == CcPhase::FastRecovery {
            // Window inflation: each further dup ACK signals a departure.
            self.cwnd = self.cwnd.saturating_add(self.mss);
            return false;
        }
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            self.enter_fast_recovery(flight);
            return true;
        }
        false
    }

    fn enter_fast_recovery(&mut self, flight: u32) {
        let half = (flight / 2).max(2 * self.mss);
        self.ssthresh = half;
        self.recover_ssthresh = half;
        self.cwnd = half + 3 * self.mss;
        self.phase = CcPhase::FastRecovery;
    }

    /// Handles a retransmission timeout with `flight` bytes outstanding:
    /// `ssthresh = max(flight/2, 2·MSS)`, `cwnd = 1·MSS`, back to slow
    /// start. This is exactly the behaviour the Figure 5 scenario forces
    /// by dropping a SYNACK ("ssthresh is reset to 2 and cwnd to 1").
    pub fn on_timeout(&mut self, flight: u32) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.phase = CcPhase::SlowStart;
        self.acked_since_increase = 0;
        self.dup_acks = 0;
    }

    /// The MSS this state was built with.
    pub fn mss(&self) -> u32 {
        self.mss
    }
}

/// RFC 6298-style retransmission-timeout estimator with Karn's algorithm
/// and exponential backoff.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff: u32,
}

impl RtoEstimator {
    /// Creates an estimator with the given initial and minimum RTO.
    pub fn new(initial: SimDuration, min_rto: SimDuration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial,
            min_rto,
            max_rto: SimDuration::from_secs(60),
            backoff: 0,
        }
    }

    /// The current retransmission timeout (with backoff applied).
    pub fn rto(&self) -> SimDuration {
        let shifted = self.rto * (1u64 << self.backoff.min(16));
        shifted.min(self.max_rto)
    }

    /// Smoothed RTT, once at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Feeds an RTT sample from a segment that was *not* retransmitted
    /// (Karn's algorithm: the caller must not sample retransmitted
    /// segments). Resets backoff.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4).max(self.min_rto);
        self.backoff = 0;
    }

    /// Doubles the timeout after an expiry (exponential backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Clears backoff after forward progress.
    pub fn on_progress(&mut self) {
        self.backoff = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = Congestion::new(MSS, 1, 64 * 1024);
        assert_eq!(cc.phase(), CcPhase::SlowStart);
        assert_eq!(cc.cwnd(), MSS);
        cc.on_new_ack(MSS);
        assert_eq!(cc.cwnd(), 2 * MSS);
        cc.on_new_ack(MSS);
        cc.on_new_ack(MSS);
        assert_eq!(cc.cwnd(), 4 * MSS);
    }

    #[test]
    fn crosses_into_congestion_avoidance_at_ssthresh() {
        // The Section 6.1 check: ssthresh = 2 MSS; after 2 ACKs cwnd
        // exceeds it and growth becomes additive.
        let mut cc = Congestion::new(MSS, 1, 2 * MSS);
        cc.on_new_ack(MSS); // cwnd 2 MSS (== ssthresh, still SS)
        assert_eq!(cc.phase(), CcPhase::SlowStart);
        cc.on_new_ack(MSS); // cwnd 3 MSS > ssthresh → CA
        assert_eq!(cc.cwnd(), 3 * MSS);
        assert_eq!(cc.phase(), CcPhase::CongestionAvoidance);
        // Now additive: needs cwnd worth of acks for +1 MSS.
        cc.on_new_ack(MSS);
        cc.on_new_ack(MSS);
        assert_eq!(cc.cwnd(), 3 * MSS, "not yet a full window of acks");
        cc.on_new_ack(MSS);
        assert_eq!(cc.cwnd(), 4 * MSS);
    }

    #[test]
    fn buggy_mode_never_enters_ca() {
        let mut cc = Congestion::new(MSS, 1, 2 * MSS);
        cc.set_bug_never_enter_ca(true);
        for _ in 0..10 {
            cc.on_new_ack(MSS);
        }
        assert_eq!(cc.cwnd(), 11 * MSS, "exponential growth continued");
    }

    #[test]
    fn timeout_resets_to_slow_start() {
        let mut cc = Congestion::new(MSS, 4, 64 * 1024);
        for _ in 0..20 {
            cc.on_new_ack(MSS);
        }
        let flight = 10 * MSS;
        cc.on_timeout(flight);
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 5 * MSS);
        assert_eq!(cc.phase(), CcPhase::SlowStart);
    }

    #[test]
    fn timeout_floor_is_two_mss() {
        let mut cc = Congestion::new(MSS, 1, 64 * 1024);
        cc.on_timeout(MSS); // tiny flight
        assert_eq!(cc.ssthresh(), 2 * MSS, "ssthresh floor is 2 MSS");
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut cc = Congestion::new(MSS, 8, 4 * MSS);
        let flight = 8 * MSS;
        assert!(!cc.on_dup_ack(flight));
        assert!(!cc.on_dup_ack(flight));
        assert!(cc.on_dup_ack(flight), "third dup ack fires");
        assert_eq!(cc.phase(), CcPhase::FastRecovery);
        assert_eq!(cc.ssthresh(), 4 * MSS);
        assert_eq!(cc.cwnd(), 4 * MSS + 3 * MSS);
        // Further dups inflate.
        cc.on_dup_ack(flight);
        assert_eq!(cc.cwnd(), 8 * MSS);
        // New ack deflates to ssthresh; at cwnd == ssthresh the derived
        // phase is slow start (the paper script's `CWND <= SSTHRESH` rule),
        // and one more ack tips it into congestion avoidance.
        assert!(cc.on_new_ack(MSS));
        assert_eq!(cc.cwnd(), 4 * MSS);
        assert_ne!(cc.phase(), CcPhase::FastRecovery);
        cc.on_new_ack(MSS);
        assert_eq!(cc.phase(), CcPhase::CongestionAvoidance);
    }

    #[test]
    fn new_ack_resets_dup_count() {
        let mut cc = Congestion::new(MSS, 8, 64 * 1024);
        cc.on_dup_ack(8 * MSS);
        cc.on_dup_ack(8 * MSS);
        cc.on_new_ack(MSS);
        assert_eq!(cc.dup_acks(), 0);
        assert!(!cc.on_dup_ack(8 * MSS));
        assert!(!cc.on_dup_ack(8 * MSS));
        assert!(cc.on_dup_ack(8 * MSS));
    }

    #[test]
    fn rto_initial_and_backoff() {
        let mut rto =
            RtoEstimator::new(SimDuration::from_millis(200), SimDuration::from_millis(50));
        assert_eq!(rto.rto(), SimDuration::from_millis(200));
        rto.on_timeout();
        assert_eq!(rto.rto(), SimDuration::from_millis(400));
        rto.on_timeout();
        assert_eq!(rto.rto(), SimDuration::from_millis(800));
        rto.on_progress();
        assert_eq!(rto.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_tracks_samples() {
        let mut rto =
            RtoEstimator::new(SimDuration::from_millis(200), SimDuration::from_millis(10));
        rto.sample(SimDuration::from_millis(20));
        // First sample: SRTT = 20ms, RTTVAR = 10ms, RTO = 20 + 40 = 60ms.
        assert_eq!(rto.srtt(), Some(SimDuration::from_millis(20)));
        assert_eq!(rto.rto(), SimDuration::from_millis(60));
        // Stable samples shrink the variance term.
        for _ in 0..50 {
            rto.sample(SimDuration::from_millis(20));
        }
        assert!(rto.rto() < SimDuration::from_millis(30));
        assert!(rto.rto() >= SimDuration::from_millis(10));
    }

    #[test]
    fn rto_is_capped() {
        let mut rto = RtoEstimator::new(SimDuration::from_secs(1), SimDuration::from_millis(10));
        for _ in 0..30 {
            rto.on_timeout();
        }
        assert_eq!(rto.rto(), SimDuration::from_secs(60));
    }
}

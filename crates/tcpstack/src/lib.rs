//! A TCP implementation — the "protocol under test" for the VirtualWire
//! reproduction's Section 6.1 experiments.
//!
//! The paper tests the Linux 2.4.17 TCP stack, which is not available to a
//! pure-Rust laptop reproduction; this crate provides an RFC-conformant
//! substitute implementing the behaviours the Figure 5 script checks:
//!
//! * three-way handshake with SYN retransmission on timeout,
//! * slow start and congestion avoidance (RFC 5681), with the
//!   ACK-counting additive increase that mirrors the script's `CCNT`
//!   counter,
//! * on RTO: `ssthresh = max(flight/2, 2·MSS)`, `cwnd = 1·MSS` — so a
//!   dropped SYNACK leaves `ssthresh = 2` segments exactly as Section 6.1
//!   engineers,
//! * fast retransmit on three duplicate ACKs and fast recovery,
//! * adaptive RTO (RFC 6298 style) with Karn's algorithm and exponential
//!   backoff,
//! * out-of-order reassembly, graceful close, RST handling.
//!
//! A deliberate-bug switch ([`TcpConfig::bug_never_enter_ca`]) makes the
//! stack ignore `ssthresh` and stay in slow start forever, demonstrating
//! that the Fault Analysis Engine actually catches the defect the paper's
//! script was written for.
//!
//! # Example
//!
//! ```
//! use vw_netsim::{Binding, LinkConfig, SimDuration, World};
//! use vw_packet::EtherType;
//! use vw_tcpstack::{Endpoint, TcpConfig, TcpStack, TcpState};
//!
//! let mut world = World::new(5);
//! let a = world.add_host("client");
//! let b = world.add_host("server");
//! world.connect(a, b, LinkConfig::fast_ethernet());
//!
//! let mut server = TcpStack::new(world.host_mac(b), world.host_ip(b));
//! server.listen(16384, TcpConfig::default());
//! let sid = world.add_protocol(b, Binding::EtherType(EtherType::IPV4), Box::new(server));
//!
//! let mut client = TcpStack::new(world.host_mac(a), world.host_ip(a));
//! let h = client.connect(TcpConfig::default(), 24576, Endpoint {
//!     mac: world.host_mac(b), ip: world.host_ip(b), port: 16384,
//! });
//! client.send(h, b"hello over tcp");
//! let cid = world.add_protocol(a, Binding::EtherType(EtherType::IPV4), Box::new(client));
//!
//! world.run_for(SimDuration::from_millis(100));
//!
//! let server = world.protocol_mut::<TcpStack>(b, sid).unwrap();
//! let accepted = server.take_accepted();
//! assert_eq!(accepted.len(), 1);
//! assert_eq!(server.socket_mut(accepted[0]).take_received(), b"hello over tcp");
//! let client = world.protocol::<TcpStack>(a, cid).unwrap();
//! assert_eq!(client.socket(h).state(), TcpState::Established);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod socket;
mod stack;

pub use congestion::{CcPhase, Congestion, RtoEstimator};
pub use socket::{Endpoint, SegmentIn, SocketStats, TcpConfig, TcpSocket, TcpState};
pub use stack::{cc_phase_code, SocketHandle, StateChange, TcpStack};

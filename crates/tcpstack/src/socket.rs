//! A single TCP connection's state machine.
//!
//! The socket is a pure state machine: inputs are segments, timer expiries
//! and application calls; outputs are frames pushed to an internal queue
//! (drained by the owning [`TcpStack`](crate::TcpStack)) and a desired
//! retransmission-timer deadline. This keeps the whole machine unit-testable
//! without a simulator.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use vw_netsim::{SimDuration, SimTime};
use vw_packet::{Frame, MacAddr, TcpBuilder, TcpFlags};

use crate::congestion::{CcPhase, Congestion, RtoEstimator};

/// TCP connection states (RFC 793).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Waiting for a connection request.
    Listen,
    /// SYN sent, awaiting SYN+ACK.
    SynSent,
    /// SYN received and SYN+ACK sent, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// FIN sent, awaiting its ACK (and the peer's FIN).
    FinWait1,
    /// Our FIN acked, awaiting the peer's FIN.
    FinWait2,
    /// Peer's FIN received; application may still send.
    CloseWait,
    /// FIN sent after CloseWait, awaiting its ACK.
    LastAck,
    /// Both FINs crossing; awaiting ACK of ours.
    Closing,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
    /// Fully closed.
    Closed,
}

/// Configuration for a TCP connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Initial congestion window in MSS units (RFC 5681 allows 1–4; the
    /// paper's description uses 1).
    pub initial_cwnd_mss: u32,
    /// Initial slow-start threshold in bytes (the paper quotes 64 KB).
    pub initial_ssthresh: u32,
    /// Initial retransmission timeout before any RTT sample.
    pub initial_rto: SimDuration,
    /// Floor for the adaptive RTO.
    pub min_rto: SimDuration,
    /// Receive window advertised to the peer.
    pub recv_window: u16,
    /// Initial send sequence number (deterministic for reproducibility).
    pub iss: u32,
    /// Deliberate bug switch: never leave slow start (the defect the
    /// Figure 5 analysis script exists to catch).
    pub bug_never_enter_ca: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1000,
            initial_cwnd_mss: 1,
            initial_ssthresh: 64 * 1024,
            initial_rto: SimDuration::from_millis(200),
            min_rto: SimDuration::from_millis(50),
            recv_window: 65535,
            iss: 1000,
            bug_never_enter_ca: false,
        }
    }
}

/// One endpoint's (MAC, IP, port) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Link-layer address.
    pub mac: MacAddr,
    /// Network-layer address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

/// Counters for a connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Segments transmitted (all kinds, including retransmissions).
    pub segments_sent: u64,
    /// Data segments transmitted (first transmissions only).
    pub data_segments_sent: u64,
    /// Retransmitted segments (timeout + fast retransmit).
    pub retransmissions: u64,
    /// Retransmission timer expiries.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Application payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Application payload bytes received in order.
    pub bytes_received: u64,
}

/// The decoded fields of an incoming segment, extracted by the stack.
#[derive(Debug, Clone)]
pub struct SegmentIn {
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A single TCP connection.
#[derive(Debug)]
pub struct TcpSocket {
    cfg: TcpConfig,
    state: TcpState,
    local: Endpoint,
    remote: Endpoint,

    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    rcv_nxt: u32,

    /// Sent-or-unsent application bytes. Acked bytes are trimmed by
    /// advancing `send_head` (compacting lazily), so the live region is
    /// `send_buf[send_head..]` and `buf_seq` is its first sequence number.
    send_buf: Vec<u8>,
    send_head: usize,
    buf_seq: u32,
    /// In-order received bytes awaiting the application.
    recv_buf: Vec<u8>,
    /// Out-of-order segments keyed by sequence number.
    ooo: BTreeMap<u32, Vec<u8>>,

    cc: Congestion,
    rto: RtoEstimator,
    /// Peer's advertised window.
    rwnd: u32,

    /// RTT probe: sample when `ack > seq` arrives, unless invalidated by a
    /// retransmission (Karn's algorithm).
    rtt_probe: Option<(u32, SimTime)>,

    fin_queued: bool,
    /// Sequence number our FIN occupies, once sent.
    fin_seq: Option<u32>,
    ip_ident: u16,

    out: Vec<Frame>,
    stats: SocketStats,
    first_data_at: Option<SimTime>,
    last_data_at: Option<SimTime>,
}

impl TcpSocket {
    /// Creates a client socket and queues the initial SYN.
    pub fn connect(cfg: TcpConfig, local: Endpoint, remote: Endpoint) -> Self {
        let mut sock = Self::new(cfg, local, remote, TcpState::SynSent);
        sock.emit(sock.iss, sock.rcv_nxt, TcpFlags::SYN, &[]);
        sock
    }

    /// Creates a server-side socket in response to a SYN (the stack calls
    /// this when a listener matches); queues the SYN+ACK.
    pub fn accept(cfg: TcpConfig, local: Endpoint, remote: Endpoint, peer_seq: u32) -> Self {
        let mut sock = Self::new(cfg, local, remote, TcpState::SynRcvd);
        sock.rcv_nxt = peer_seq.wrapping_add(1);
        sock.emit(sock.iss, sock.rcv_nxt, TcpFlags::SYN | TcpFlags::ACK, &[]);
        sock
    }

    fn new(cfg: TcpConfig, local: Endpoint, remote: Endpoint, state: TcpState) -> Self {
        let iss = cfg.iss;
        TcpSocket {
            cfg,
            state,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_nxt: iss.wrapping_add(1), // SYN consumes one
            rcv_nxt: 0,
            send_buf: Vec::new(),
            send_head: 0,
            buf_seq: iss.wrapping_add(1),
            recv_buf: Vec::new(),
            ooo: BTreeMap::new(),
            cc: {
                let mut cc = Congestion::new(cfg.mss, cfg.initial_cwnd_mss, cfg.initial_ssthresh);
                cc.set_bug_never_enter_ca(cfg.bug_never_enter_ca);
                cc
            },
            rto: RtoEstimator::new(cfg.initial_rto, cfg.min_rto),
            rwnd: 65535,
            rtt_probe: None,
            fin_queued: false,
            fin_seq: None,
            ip_ident: 0,
            out: Vec::new(),
            stats: SocketStats::default(),
            first_data_at: None,
            last_data_at: None,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cc.cwnd()
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u32 {
        self.cc.ssthresh()
    }

    /// Current congestion-control phase.
    pub fn cc_phase(&self) -> CcPhase {
        self.cc.phase()
    }

    /// Connection counters.
    pub fn stats(&self) -> SocketStats {
        self.stats
    }

    /// Achieved receive goodput in bits/s between the first and last
    /// in-order data arrival, if measurable.
    pub fn recv_goodput_bps(&self) -> Option<f64> {
        let (first, last) = (self.first_data_at?, self.last_data_at?);
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some(self.stats.bytes_received as f64 * 8.0 / span)
    }

    /// The local endpoint.
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// The remote endpoint.
    pub fn remote(&self) -> Endpoint {
        self.remote
    }

    /// Bytes queued but not yet acknowledged.
    pub fn unacked_len(&self) -> usize {
        self.send_len()
    }

    /// `true` once every queued byte (and FIN, if any) is acknowledged.
    pub fn send_complete(&self) -> bool {
        self.send_len() == 0 && (!self.fin_queued || self.fin_acked())
    }

    /// Length of the live (unacknowledged) region of the send buffer.
    fn send_len(&self) -> usize {
        self.send_buf.len() - self.send_head
    }

    fn fin_acked(&self) -> bool {
        match self.fin_seq {
            Some(seq) => seq_lt(seq, self.snd_una),
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Queues application data for transmission.
    pub fn send_data(&mut self, data: &[u8]) {
        self.send_buf.extend_from_slice(data);
    }

    /// Takes everything received in order so far.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_buf)
    }

    /// Bytes received in order and not yet taken.
    pub fn received_len(&self) -> usize {
        self.recv_buf.len()
    }

    /// Requests an orderly close once all queued data is sent.
    pub fn close(&mut self) {
        if !self.fin_queued {
            self.fin_queued = true;
        }
    }

    // ------------------------------------------------------------------
    // Output
    // ------------------------------------------------------------------

    /// Drains frames queued for transmission.
    pub fn take_out(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.out)
    }

    /// Deadline the stack should arm the retransmission timer for: `Some`
    /// while anything is in flight.
    pub fn timer_wanted(&self) -> Option<SimDuration> {
        match self.state {
            TcpState::Closed | TcpState::Listen => None,
            TcpState::TimeWait => Some(SimDuration::from_millis(500)),
            _ => {
                if self.snd_nxt != self.snd_una {
                    Some(self.rto.rto())
                } else {
                    None
                }
            }
        }
    }

    fn emit(&mut self, seq: u32, ack: u32, flags: TcpFlags, payload: &[u8]) {
        self.ip_ident = self.ip_ident.wrapping_add(1);
        let frame = TcpBuilder::new()
            .src_mac(self.local.mac)
            .dst_mac(self.remote.mac)
            .src_ip(self.local.ip)
            .dst_ip(self.remote.ip)
            .src_port(self.local.port)
            .dst_port(self.remote.port)
            .seq(seq)
            .ack(ack)
            .flags(flags)
            .window(self.cfg.recv_window)
            .ident(self.ip_ident)
            .payload(payload)
            .build();
        self.stats.segments_sent += 1;
        self.out.push(frame);
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    /// Transmits whatever the congestion and receive windows allow.
    pub fn pump(&mut self, now: SimTime) {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::Closing
        ) {
            return;
        }
        let window = self.cc.cwnd().min(self.rwnd.max(1));
        loop {
            let flight = self.snd_nxt.wrapping_sub(self.snd_una);
            // Next unsent byte's offset into send_buf.
            let sent = self.snd_nxt.wrapping_sub(self.buf_seq) as usize;
            let unsent = self.send_len().saturating_sub(sent);
            if unsent > 0 && !self.fin_sent() {
                let room = window.saturating_sub(flight);
                if room == 0 {
                    break;
                }
                let len = unsent.min(self.cfg.mss as usize).min(room as usize);
                if len == 0 {
                    break;
                }
                let payload = self.copy_send_range(sent, len);
                let seq = self.snd_nxt;
                self.emit(seq, self.rcv_nxt, TcpFlags::ACK | TcpFlags::PSH, &payload);
                vw_packet::arena::recycle_buffer(payload);
                self.stats.data_segments_sent += 1;
                self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some((seq, now));
                }
            } else if self.fin_ready_to_send() {
                let flight = self.snd_nxt.wrapping_sub(self.snd_una);
                if flight.wrapping_add(1) > window {
                    break;
                }
                let seq = self.snd_nxt;
                self.fin_seq = Some(seq);
                self.emit(seq, self.rcv_nxt, TcpFlags::FIN | TcpFlags::ACK, &[]);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = match self.state {
                    TcpState::Established => TcpState::FinWait1,
                    TcpState::CloseWait => TcpState::LastAck,
                    other => other,
                };
                break;
            } else {
                break;
            }
        }
    }

    fn fin_sent(&self) -> bool {
        self.fin_seq.is_some()
    }

    fn fin_ready_to_send(&self) -> bool {
        let sent = self.snd_nxt.wrapping_sub(self.buf_seq) as usize;
        self.fin_queued && !self.fin_sent() && sent >= self.send_len()
    }

    // ------------------------------------------------------------------
    // Segment arrival
    // ------------------------------------------------------------------

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: SegmentIn) {
        if seg.flags.contains(TcpFlags::RST) {
            self.state = TcpState::Closed;
            return;
        }
        self.rwnd = u32::from(seg.window);
        match self.state {
            TcpState::SynSent => self.on_segment_syn_sent(now, seg),
            TcpState::SynRcvd => self.on_segment_syn_rcvd(now, seg),
            TcpState::Listen | TcpState::Closed => { /* the stack routes these */ }
            _ => self.on_segment_connected(now, seg),
        }
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: SegmentIn) {
        if seg.flags.contains(TcpFlags::SYN) && seg.flags.contains(TcpFlags::ACK) {
            if seg.ack != self.iss.wrapping_add(1) {
                return; // bogus ack
            }
            self.snd_una = seg.ack;
            self.rcv_nxt = seg.seq.wrapping_add(1);
            self.state = TcpState::Established;
            self.rto.on_progress();
            self.emit(self.snd_nxt, self.rcv_nxt, TcpFlags::ACK, &[]);
            self.pump(now);
        }
        // A bare SYN (simultaneous open) is not supported by this stack.
    }

    fn on_segment_syn_rcvd(&mut self, now: SimTime, seg: SegmentIn) {
        if seg.flags.contains(TcpFlags::SYN) && !seg.flags.contains(TcpFlags::ACK) {
            // Retransmitted SYN: repeat the SYN+ACK.
            self.emit(self.iss, self.rcv_nxt, TcpFlags::SYN | TcpFlags::ACK, &[]);
            return;
        }
        if seg.flags.contains(TcpFlags::ACK) && seg.ack == self.iss.wrapping_add(1) {
            self.snd_una = seg.ack;
            self.state = TcpState::Established;
            self.rto.on_progress();
            // The handshake ACK may carry data.
            if !seg.payload.is_empty() || seg.flags.contains(TcpFlags::FIN) {
                self.on_segment_connected(now, seg);
            }
        }
    }

    fn on_segment_connected(&mut self, now: SimTime, seg: SegmentIn) {
        let mut should_ack = false;

        // --- ACK processing -------------------------------------------
        if seg.flags.contains(TcpFlags::ACK) {
            let ack = seg.ack;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
                let acked = ack.wrapping_sub(self.snd_una);
                // Trim acknowledged bytes from the send buffer (the FIN
                // octet is not in the buffer).
                let data_acked = {
                    let buf_end = self.buf_seq.wrapping_add(self.send_len() as u32);
                    let data_ack_to = if seq_le(ack, buf_end) { ack } else { buf_end };
                    data_ack_to.wrapping_sub(self.buf_seq)
                };
                self.send_head += data_acked as usize;
                // Compact once the dead prefix outweighs the live bytes, so
                // trimming stays amortized O(1) per acked byte.
                if self.send_head > self.send_buf.len() - self.send_head {
                    self.send_buf.drain(..self.send_head);
                    self.send_head = 0;
                }
                self.buf_seq = self.buf_seq.wrapping_add(data_acked);
                self.stats.bytes_acked += u64::from(data_acked);
                self.snd_una = ack;
                // RTT sample (Karn: probe is cleared on any retransmission).
                if let Some((probe_seq, sent_at)) = self.rtt_probe {
                    if seq_lt(probe_seq, ack) {
                        self.rto.sample(now.saturating_since(sent_at));
                        self.rtt_probe = None;
                    }
                }
                self.rto.on_progress();
                self.cc.on_new_ack(acked);
                // Progress in closing handshakes.
                if self.fin_acked() {
                    self.state = match self.state {
                        TcpState::FinWait1 => TcpState::FinWait2,
                        TcpState::Closing => TcpState::TimeWait,
                        TcpState::LastAck => TcpState::Closed,
                        other => other,
                    };
                }
            } else if ack == self.snd_una
                && self.snd_nxt != self.snd_una
                && seg.payload.is_empty()
                && !seg.flags.contains(TcpFlags::FIN)
                && !seg.flags.contains(TcpFlags::SYN)
            {
                // Duplicate ACK.
                let flight = self.snd_nxt.wrapping_sub(self.snd_una);
                if self.cc.on_dup_ack(flight) {
                    self.stats.fast_retransmits += 1;
                    self.retransmit_head();
                }
            }
        }

        // --- Payload processing ---------------------------------------
        if !seg.payload.is_empty() {
            should_ack = true;
            if seg.seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                self.stats.bytes_received += seg.payload.len() as u64;
                self.recv_buf.extend_from_slice(&seg.payload);
                if self.first_data_at.is_none() {
                    self.first_data_at = Some(now);
                }
                self.last_data_at = Some(now);
                self.drain_ooo();
            } else if seq_lt(self.rcv_nxt, seg.seq) {
                self.ooo.entry(seg.seq).or_insert(seg.payload.clone());
            }
            // else: old duplicate — just re-ack.
        }

        // --- FIN processing -------------------------------------------
        if seg.flags.contains(TcpFlags::FIN) {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                should_ack = true;
                self.state = match self.state {
                    TcpState::Established => TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        if self.fin_acked() {
                            TcpState::TimeWait
                        } else {
                            TcpState::Closing
                        }
                    }
                    TcpState::FinWait2 => TcpState::TimeWait,
                    other => other,
                };
            } else if seq_lt(fin_seq, self.rcv_nxt) {
                should_ack = true; // duplicate FIN: re-ack
            }
        }

        if should_ack {
            self.emit(self.snd_nxt, self.rcv_nxt, TcpFlags::ACK, &[]);
        }
        self.pump(now);
    }

    fn drain_ooo(&mut self) {
        while let Some((&seq, _)) = self.ooo.iter().next() {
            if seq_lt(seq, self.rcv_nxt) {
                // Entirely old.
                self.ooo.remove(&seq);
            } else if seq == self.rcv_nxt {
                let payload = self.ooo.remove(&seq).expect("present");
                self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
                self.stats.bytes_received += payload.len() as u64;
                self.recv_buf.extend_from_slice(&payload);
            } else {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Handles the retransmission timer firing.
    pub fn on_rto(&mut self, _now: SimTime) {
        match self.state {
            TcpState::SynSent => {
                self.stats.timeouts += 1;
                self.stats.retransmissions += 1;
                // This is the paper's Section 6.1 lever: a lost SYNACK
                // forces this path, leaving ssthresh = 2 MSS and cwnd = 1.
                self.cc.on_timeout(self.cfg.mss);
                self.rto.on_timeout();
                self.rtt_probe = None;
                self.emit(self.iss, 0, TcpFlags::SYN, &[]);
            }
            TcpState::SynRcvd => {
                self.stats.timeouts += 1;
                self.stats.retransmissions += 1;
                self.rto.on_timeout();
                self.emit(self.iss, self.rcv_nxt, TcpFlags::SYN | TcpFlags::ACK, &[]);
            }
            TcpState::TimeWait => {
                self.state = TcpState::Closed;
            }
            TcpState::Closed | TcpState::Listen => {}
            _ => {
                if self.snd_nxt == self.snd_una {
                    return; // nothing in flight; stale timer
                }
                self.stats.timeouts += 1;
                let flight = self.snd_nxt.wrapping_sub(self.snd_una);
                self.cc.on_timeout(flight);
                self.rto.on_timeout();
                self.rtt_probe = None;
                self.retransmit_head();
            }
        }
    }

    fn retransmit_head(&mut self) {
        self.stats.retransmissions += 1;
        self.rtt_probe = None; // Karn's algorithm
        if let Some(fin_seq) = self.fin_seq {
            if fin_seq == self.snd_una {
                self.emit(fin_seq, self.rcv_nxt, TcpFlags::FIN | TcpFlags::ACK, &[]);
                return;
            }
        }
        let offset = self.snd_una.wrapping_sub(self.buf_seq) as usize;
        let in_flight_data = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
        let len = in_flight_data
            .min(self.cfg.mss as usize)
            .min(self.send_len().saturating_sub(offset));
        if len == 0 {
            return;
        }
        let payload = self.copy_send_range(offset, len);
        self.emit(
            self.snd_una,
            self.rcv_nxt,
            TcpFlags::ACK | TcpFlags::PSH,
            &payload,
        );
        vw_packet::arena::recycle_buffer(payload);
    }

    /// Copies `len` live send-buffer bytes starting `offset` bytes past
    /// `buf_seq` into a pooled buffer with a single memcpy.
    fn copy_send_range(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut payload = vw_packet::arena::take_buffer(len);
        let start = self.send_head + offset;
        payload.extend_from_slice(&self.send_buf[start..start + len]);
        payload
    }
}

/// `a < b` in 32-bit sequence space.
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

/// `a <= b` in 32-bit sequence space.
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u32, port: u16) -> Endpoint {
        Endpoint {
            mac: MacAddr::from_index(i),
            ip: Ipv4Addr::new(10, 0, 0, i as u8),
            port,
        }
    }

    fn now() -> SimTime {
        SimTime::from_nanos(1_000_000)
    }

    /// Ferries frames between two sockets until both go quiet. Returns the
    /// number of segments exchanged.
    fn converse(a: &mut TcpSocket, b: &mut TcpSocket) -> usize {
        fn ferry(src: &mut TcpSocket, dst: &mut TcpSocket) -> usize {
            let mut n = 0;
            for frame in src.take_out() {
                let tcp = frame.tcp().expect("tcp frame");
                n += 1;
                dst.on_segment(
                    now(),
                    SegmentIn {
                        seq: tcp.seq(),
                        ack: tcp.ack(),
                        flags: tcp.flags(),
                        window: tcp.window(),
                        payload: tcp.payload().to_vec(),
                    },
                );
            }
            n
        }
        let mut exchanged = 0;
        loop {
            let n = ferry(a, b) + ferry(b, a);
            if n == 0 {
                break;
            }
            exchanged += n;
        }
        exchanged
    }

    fn established_pair() -> (TcpSocket, TcpSocket) {
        let mut client = TcpSocket::connect(TcpConfig::default(), ep(1, 24576), ep(2, 16384));
        // Server accepts based on the SYN.
        let syn = client.take_out().remove(0);
        let tcp = syn.tcp().unwrap();
        assert!(tcp.flags().contains(TcpFlags::SYN));
        let mut server = TcpSocket::accept(
            TcpConfig {
                iss: 5000,
                ..TcpConfig::default()
            },
            ep(2, 16384),
            ep(1, 24576),
            tcp.seq(),
        );
        let _ = converse(&mut client, &mut server);
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let (_c, _s) = established_pair();
    }

    #[test]
    fn data_transfer_small() {
        let (mut c, mut s) = established_pair();
        c.send_data(b"hello tcp");
        c.pump(now());
        converse(&mut c, &mut s);
        assert_eq!(s.take_received(), b"hello tcp");
        assert!(c.send_complete());
    }

    #[test]
    fn bulk_transfer_respects_mss() {
        let (mut c, mut s) = established_pair();
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        c.send_data(&data);
        c.pump(now());
        converse(&mut c, &mut s);
        assert_eq!(s.take_received(), data);
        // 10 segments of MSS 1000 (first flights limited by cwnd, but all
        // eventually sent exactly once on a perfect channel).
        assert_eq!(c.stats().data_segments_sent, 10);
        assert_eq!(c.stats().retransmissions, 0);
    }

    #[test]
    fn slow_start_grows_window() {
        let (mut c, mut s) = established_pair();
        assert_eq!(c.cwnd(), 1000);
        c.send_data(&[0u8; 5000]);
        c.pump(now());
        converse(&mut c, &mut s);
        // 5 acked MSS → cwnd grew by 5 MSS.
        assert_eq!(c.cwnd(), 6000);
        assert_eq!(c.cc_phase(), CcPhase::SlowStart);
    }

    #[test]
    fn timeout_retransmits_and_resets_window() {
        let (mut c, mut s) = established_pair();
        c.send_data(&[7u8; 3000]);
        c.pump(now());
        let lost = c.take_out(); // all in-flight segments vanish
        assert_eq!(lost.len(), 1, "initial cwnd of 1 MSS permits one segment");
        assert!(c.timer_wanted().is_some());
        c.on_rto(now());
        assert_eq!(c.cwnd(), 1000);
        assert_eq!(c.ssthresh(), 2000, "flight/2 floored at 2 MSS");
        converse(&mut c, &mut s);
        assert_eq!(s.take_received(), vec![7u8; 3000]);
        assert_eq!(c.stats().timeouts, 1);
    }

    #[test]
    fn lost_synack_resets_ssthresh_like_the_paper_says() {
        // Section 6.1: drop the SYNACK → SYN retransmission → ssthresh 2
        // MSS, cwnd 1 MSS.
        let mut client = TcpSocket::connect(TcpConfig::default(), ep(1, 24576), ep(2, 16384));
        let _syn = client.take_out();
        client.on_rto(now()); // SYN timer fires (SYNACK was dropped)
        let resyn = client.take_out();
        assert_eq!(resyn.len(), 1);
        assert!(resyn[0].tcp().unwrap().flags().contains(TcpFlags::SYN));
        assert_eq!(client.cwnd(), 1000);
        assert_eq!(client.ssthresh(), 2000);
    }

    #[test]
    fn triple_dup_ack_fast_retransmit() {
        let (mut c, mut s) = established_pair();
        // Open the window first.
        c.send_data(&[1u8; 4000]);
        c.pump(now());
        converse(&mut c, &mut s);
        s.take_received();
        // Send 5 segments, drop the first, deliver the rest.
        c.send_data(&[2u8; 5000]);
        c.pump(now());
        let mut frames = c.take_out();
        assert!(frames.len() >= 4, "window should allow several segments");
        let _dropped = frames.remove(0);
        for frame in frames {
            let tcp = frame.tcp().unwrap();
            s.on_segment(
                now(),
                SegmentIn {
                    seq: tcp.seq(),
                    ack: tcp.ack(),
                    flags: tcp.flags(),
                    window: tcp.window(),
                    payload: tcp.payload().to_vec(),
                },
            );
        }
        // The receiver generated duplicate ACKs; feed them back.
        converse(&mut c, &mut s);
        assert_eq!(c.stats().fast_retransmits, 1);
        assert_eq!(s.take_received(), vec![2u8; 5000]);
        assert_eq!(c.stats().timeouts, 0, "recovered without an RTO");
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let (mut c, mut s) = established_pair();
        c.send_data(&[1u8; 4000]);
        c.pump(now());
        converse(&mut c, &mut s);
        s.take_received();
        c.send_data(b"abcdef");
        // Force two tiny segments by pumping between sends... simpler:
        // craft reordering at segment level.
        c.pump(now());
        let frames = c.take_out();
        assert_eq!(frames.len(), 1); // 6 bytes fit one segment; test ooo via direct segments instead
        let tcp = frames[0].tcp().unwrap();
        // Split manually into two SegmentIns delivered out of order.
        let seq = tcp.seq();
        let p = tcp.payload();
        let first = SegmentIn {
            seq,
            ack: tcp.ack(),
            flags: tcp.flags(),
            window: tcp.window(),
            payload: p[..3].to_vec(),
        };
        let second = SegmentIn {
            seq: seq.wrapping_add(3),
            ack: tcp.ack(),
            flags: tcp.flags(),
            window: tcp.window(),
            payload: p[3..].to_vec(),
        };
        s.on_segment(now(), second);
        assert_eq!(s.received_len(), 0, "gap holds delivery back");
        s.on_segment(now(), first);
        assert_eq!(s.take_received(), b"abcdef");
    }

    #[test]
    fn graceful_close_both_ways() {
        let (mut c, mut s) = established_pair();
        c.send_data(b"bye");
        c.close();
        c.pump(now());
        converse(&mut c, &mut s);
        assert_eq!(s.take_received(), b"bye");
        assert_eq!(s.state(), TcpState::CloseWait);
        assert!(matches!(c.state(), TcpState::FinWait2));
        s.close();
        s.pump(now());
        converse(&mut c, &mut s);
        assert!(matches!(c.state(), TcpState::TimeWait));
        assert_eq!(s.state(), TcpState::Closed);
    }

    #[test]
    fn rst_kills_the_connection() {
        let (mut c, _s) = established_pair();
        c.on_segment(
            now(),
            SegmentIn {
                seq: 0,
                ack: 0,
                flags: TcpFlags::RST,
                window: 0,
                payload: Vec::new(),
            },
        );
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn duplicate_data_is_reacked_not_redelivered() {
        let (mut c, mut s) = established_pair();
        c.send_data(b"data!");
        c.pump(now());
        let frame = c.take_out().remove(0);
        let tcp = frame.tcp().unwrap();
        let seg = SegmentIn {
            seq: tcp.seq(),
            ack: tcp.ack(),
            flags: tcp.flags(),
            window: tcp.window(),
            payload: tcp.payload().to_vec(),
        };
        s.on_segment(now(), seg.clone());
        s.on_segment(now(), seg);
        assert_eq!(s.take_received(), b"data!");
        // Two ACKs were emitted (one per copy).
        let acks = s.take_out();
        assert_eq!(acks.len(), 2);
        assert_eq!(
            acks[0].tcp().unwrap().ack(),
            acks[1].tcp().unwrap().ack(),
            "duplicate re-acked at same cumulative point"
        );
    }

    #[test]
    fn seq_space_helpers() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(seq_lt(u32::MAX, 1)); // wraparound
        assert!(seq_le(5, 5));
    }

    #[test]
    fn retransmitted_syn_gets_fresh_synack() {
        let mut client = TcpSocket::connect(TcpConfig::default(), ep(1, 1000), ep(2, 2000));
        let syn = client.take_out().remove(0);
        let mut server = TcpSocket::accept(
            TcpConfig::default(),
            ep(2, 2000),
            ep(1, 1000),
            syn.tcp().unwrap().seq(),
        );
        let _first_synack = server.take_out();
        // SYNACK lost; client retransmits its SYN.
        client.on_rto(now());
        let resyn = client.take_out().remove(0);
        let tcp = resyn.tcp().unwrap();
        server.on_segment(
            now(),
            SegmentIn {
                seq: tcp.seq(),
                ack: tcp.ack(),
                flags: tcp.flags(),
                window: tcp.window(),
                payload: Vec::new(),
            },
        );
        let synack = server.take_out();
        assert_eq!(synack.len(), 1);
        let f = synack[0].tcp().unwrap().flags();
        assert!(f.contains(TcpFlags::SYN) && f.contains(TcpFlags::ACK));
    }
}

//! The host-level TCP stack: socket demultiplexing, listeners, timers, and
//! rate-controlled application sources.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use vw_netsim::{Context, Protocol, SimTime, TimerId};
use vw_obs::ProtoAspect;
use vw_packet::{Frame, MacAddr, TcpFlags};

use crate::congestion::CcPhase;
use crate::socket::{Endpoint, SegmentIn, TcpConfig, TcpSocket, TcpState};

/// Identifies a connection inside a [`TcpStack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(usize);

impl SocketHandle {
    /// The raw index (stable for the stack's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index. Handles are assigned densely in
    /// creation/acceptance order, so `from_index(0)` is the first socket.
    pub fn from_index(index: usize) -> Self {
        SocketHandle(index)
    }
}

const TOKEN_KIND_RTO: u64 = 0;
const TOKEN_KIND_SOURCE: u64 = 1;

fn token(kind: u64, idx: usize) -> u64 {
    kind << 32 | idx as u64
}

/// One timestamped congestion-control observation: which quantity
/// changed and its new value (see [`ProtoAspect`] for the encoding).
pub type StateChange = (SimTime, ProtoAspect, u64);

/// The per-socket congestion-control snapshot the stack diffs after
/// every socket interaction to derive [`StateChange`] records.
#[derive(Debug, Clone, Copy)]
struct CcSnapshot {
    phase: CcPhase,
    cwnd: u32,
    ssthresh: u32,
    fast_retransmits: u64,
    timeouts: u64,
}

impl CcSnapshot {
    fn of(socket: &TcpSocket) -> Self {
        CcSnapshot {
            phase: socket.cc_phase(),
            cwnd: socket.cwnd(),
            ssthresh: socket.ssthresh(),
            fast_retransmits: socket.stats().fast_retransmits,
            timeouts: socket.stats().timeouts,
        }
    }
}

/// Encodes a [`CcPhase`] as the `value` of a
/// [`ProtoAspect::CcPhase`] observation.
pub fn cc_phase_code(phase: CcPhase) -> u64 {
    match phase {
        CcPhase::SlowStart => 0,
        CcPhase::CongestionAvoidance => 1,
        CcPhase::FastRecovery => 2,
    }
}

/// A rate-controlled application source attached to a socket: feeds payload
/// into the send buffer at `rate_bps` until `total_bytes` have been offered
/// (the "offered data pumping rate" knob of the paper's Figure 7).
#[derive(Debug, Clone, Copy)]
struct AppSource {
    rate_bps: u64,
    total_bytes: u64,
    offered: u64,
    chunk: usize,
}

/// A TCP/IP stack for one simulated host, installed as a
/// [`Protocol`](vw_netsim::Protocol) bound to IPv4.
///
/// External drivers (tests, examples, the benchmark harness) mutate the
/// stack through [`World::protocol_mut`](vw_netsim::World::protocol_mut) —
/// opening connections, queueing data — and then
/// [`poke`](vw_netsim::World::poke) the handler so queued work is flushed
/// into the simulation.
#[derive(Debug)]
pub struct TcpStack {
    mac: MacAddr,
    ip: Ipv4Addr,
    sockets: Vec<TcpSocket>,
    /// Listening ports and the config applied to accepted connections.
    listeners: HashMap<u16, TcpConfig>,
    /// Armed RTO timer per socket.
    timers: Vec<Option<TimerId>>,
    sources: HashMap<usize, AppSource>,
    /// Handles of connections accepted from listeners, newest last.
    accepted: Vec<SocketHandle>,
    /// Next automatic ISS, stepped per connection for distinguishability.
    next_iss: u32,
    /// Last-seen congestion snapshot per socket (diffed after every
    /// socket interaction).
    snapshots: Vec<CcSnapshot>,
    /// Timestamped state changes across all sockets, in detection order.
    state_log: Vec<StateChange>,
}

impl TcpStack {
    /// Creates a stack for a host with the given link and network
    /// addresses (obtain them from
    /// [`World::host_mac`](vw_netsim::World::host_mac) /
    /// [`World::host_ip`](vw_netsim::World::host_ip)).
    pub fn new(mac: MacAddr, ip: Ipv4Addr) -> Self {
        TcpStack {
            mac,
            ip,
            sockets: Vec::new(),
            listeners: HashMap::new(),
            timers: Vec::new(),
            sources: HashMap::new(),
            accepted: Vec::new(),
            next_iss: 1000,
            snapshots: Vec::new(),
            state_log: Vec::new(),
        }
    }

    /// Starts listening on `port`; accepted connections use `cfg`.
    pub fn listen(&mut self, port: u16, cfg: TcpConfig) {
        self.listeners.insert(port, cfg);
    }

    /// Opens a connection. The SYN is transmitted at the next handler
    /// dispatch — call [`World::poke`](vw_netsim::World::poke) after this
    /// when the simulation is already running.
    pub fn connect(&mut self, cfg: TcpConfig, local_port: u16, remote: Endpoint) -> SocketHandle {
        let local = Endpoint {
            mac: self.mac,
            ip: self.ip,
            port: local_port,
        };
        let socket = TcpSocket::connect(cfg, local, remote);
        self.push_socket(socket)
    }

    fn push_socket(&mut self, socket: TcpSocket) -> SocketHandle {
        self.snapshots.push(CcSnapshot::of(&socket));
        self.sockets.push(socket);
        self.timers.push(None);
        SocketHandle(self.sockets.len() - 1)
    }

    /// Queues application data on a connection.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn send(&mut self, handle: SocketHandle, data: &[u8]) {
        self.sockets[handle.0].send_data(data);
    }

    /// Requests an orderly close.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn close(&mut self, handle: SocketHandle) {
        self.sockets[handle.0].close();
    }

    /// Attaches a rate-controlled source that offers `total_bytes` of
    /// payload at `rate_bps` (the offered-load generator for Figure 7).
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero or the handle is stale.
    pub fn attach_source(&mut self, handle: SocketHandle, rate_bps: u64, total_bytes: u64) {
        assert!(rate_bps > 0, "offered rate must be positive");
        // Feed in ~1 ms chunks, at least one MSS.
        let chunk = ((rate_bps / 8 / 1000) as usize).max(1000);
        self.sources.insert(
            handle.0,
            AppSource {
                rate_bps,
                total_bytes,
                offered: 0,
                chunk,
            },
        );
    }

    /// Connections accepted from listeners since the last call.
    pub fn take_accepted(&mut self) -> Vec<SocketHandle> {
        std::mem::take(&mut self.accepted)
    }

    /// Read-only access to a connection.
    pub fn socket(&self, handle: SocketHandle) -> &TcpSocket {
        &self.sockets[handle.0]
    }

    /// Mutable access to a connection (e.g. to take received data).
    pub fn socket_mut(&mut self, handle: SocketHandle) -> &mut TcpSocket {
        &mut self.sockets[handle.0]
    }

    /// Number of sockets (live and closed) in the stack.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Timestamped congestion-control state changes observed so far, in
    /// detection order — the feed for the conformance models in
    /// `vw-analysis` (loss indicators first, then the phase/window moves
    /// they caused).
    pub fn state_log(&self) -> &[StateChange] {
        &self.state_log
    }

    /// Diffs the socket's congestion state against the last snapshot and
    /// records every change.
    fn observe(&mut self, now: SimTime, idx: usize) {
        let cur = CcSnapshot::of(&self.sockets[idx]);
        let prev = self.snapshots[idx];
        if cur.timeouts != prev.timeouts {
            self.state_log
                .push((now, ProtoAspect::RtoTimeout, cur.timeouts));
        }
        if cur.fast_retransmits != prev.fast_retransmits {
            self.state_log
                .push((now, ProtoAspect::FastRetransmit, cur.fast_retransmits));
        }
        if cur.ssthresh != prev.ssthresh {
            self.state_log
                .push((now, ProtoAspect::Ssthresh, u64::from(cur.ssthresh)));
        }
        if cur.phase != prev.phase {
            self.state_log
                .push((now, ProtoAspect::CcPhase, cc_phase_code(cur.phase)));
        }
        if cur.cwnd != prev.cwnd {
            self.state_log
                .push((now, ProtoAspect::Cwnd, u64::from(cur.cwnd)));
        }
        self.snapshots[idx] = cur;
    }

    fn flush_socket(&mut self, ctx: &mut Context<'_>, idx: usize) {
        let _span = vw_trace::span("tcp_send", vw_trace::Category::Tcp);
        self.observe(ctx.now(), idx);
        for frame in self.sockets[idx].take_out() {
            ctx.send(frame);
        }
        // Reconcile the RTO timer: cancel-and-rearm keeps the deadline
        // relative to the most recent activity.
        if let Some(id) = self.timers[idx].take() {
            ctx.cancel_timer(id);
        }
        if let Some(delay) = self.sockets[idx].timer_wanted() {
            self.timers[idx] = Some(ctx.set_timer(delay, token(TOKEN_KIND_RTO, idx)));
        }
    }

    fn flush_all(&mut self, ctx: &mut Context<'_>) {
        for idx in 0..self.sockets.len() {
            self.sockets[idx].pump(ctx.now());
            self.flush_socket(ctx, idx);
        }
    }

    fn feed_source(&mut self, ctx: &mut Context<'_>, idx: usize) {
        let Some(mut source) = self.sources.get(&idx).copied() else {
            return;
        };
        if source.offered >= source.total_bytes {
            return;
        }
        let remaining = (source.total_bytes - source.offered) as usize;
        let chunk = source.chunk.min(remaining);
        let data = vec![0xA5u8; chunk];
        self.sockets[idx].send_data(&data);
        source.offered += chunk as u64;
        let gap = vw_netsim::time::serialization_time(chunk, source.rate_bps);
        if source.offered < source.total_bytes {
            ctx.set_timer(gap, token(TOKEN_KIND_SOURCE, idx));
        }
        self.sources.insert(idx, source);
        self.sockets[idx].pump(ctx.now());
        self.flush_socket(ctx, idx);
    }
}

impl Protocol for TcpStack {
    fn name(&self) -> &str {
        "tcp-stack"
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Kick any sources that have not started offering yet.
        let idle: Vec<usize> = self
            .sources
            .iter()
            .filter(|(_, s)| s.offered == 0)
            .map(|(idx, _)| *idx)
            .collect();
        for idx in idle {
            self.feed_source(ctx, idx);
        }
        self.flush_all(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: Frame) {
        let _span = vw_trace::span("tcp_recv", vw_trace::Category::Tcp);
        let Some(tcp) = frame.tcp() else { return };
        let Some(ip) = frame.ipv4() else { return };
        if ip.dst() != self.ip {
            return;
        }
        if !ip.verify_checksum() || !tcp.verify_checksum() {
            return; // corrupted segment: drop, let retransmission recover
        }
        let seg = SegmentIn {
            seq: tcp.seq(),
            ack: tcp.ack(),
            flags: tcp.flags(),
            window: tcp.window(),
            payload: tcp.payload().to_vec(),
        };
        let (src_ip, dst_port, src_port) = (ip.src(), tcp.dst_port(), tcp.src_port());

        // Demux to an existing connection first.
        let existing = self.sockets.iter().position(|s| {
            s.local().port == dst_port
                && s.remote().port == src_port
                && s.remote().ip == src_ip
                && s.state() != TcpState::Closed
        });
        let idx = match existing {
            Some(idx) => idx,
            None => {
                // New connection: only a SYN to a listening port counts.
                if !seg.flags.contains(TcpFlags::SYN) || seg.flags.contains(TcpFlags::ACK) {
                    return;
                }
                let Some(cfg) = self.listeners.get(&dst_port).copied() else {
                    return;
                };
                let mut cfg = cfg;
                self.next_iss = self.next_iss.wrapping_add(64_000);
                cfg.iss = self.next_iss;
                let local = Endpoint {
                    mac: self.mac,
                    ip: self.ip,
                    port: dst_port,
                };
                let remote = Endpoint {
                    mac: frame.src(),
                    ip: src_ip,
                    port: src_port,
                };
                let socket = TcpSocket::accept(cfg, local, remote, seg.seq);
                let handle = self.push_socket(socket);
                self.accepted.push(handle);
                let idx = handle.0;
                self.flush_socket(ctx, idx);
                return;
            }
        };
        self.sockets[idx].on_segment(ctx.now(), seg);
        self.flush_socket(ctx, idx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tok: u64) {
        let kind = tok >> 32;
        let idx = (tok & 0xffff_ffff) as usize;
        if idx >= self.sockets.len() {
            return;
        }
        match kind {
            TOKEN_KIND_RTO => {
                self.timers[idx] = None;
                self.sockets[idx].on_rto(ctx.now());
                self.sockets[idx].pump(ctx.now());
                self.flush_socket(ctx, idx);
            }
            TOKEN_KIND_SOURCE => {
                self.feed_source(ctx, idx);
            }
            _ => {}
        }
    }
}

//! TCP edge cases: receiver-window limiting, adaptive RTO behaviour,
//! close-state machinery, and recovery dynamics under engineered loss.

use vw_netsim::{Binding, Context, ErrorModel, Hook, LinkConfig, SimDuration, Verdict, World};
use vw_packet::{EtherType, Frame};
use vw_tcpstack::{Endpoint, SocketHandle, TcpConfig, TcpStack, TcpState};

struct Bed {
    world: World,
    a: vw_netsim::DeviceId,
    b: vw_netsim::DeviceId,
    cid: vw_netsim::ProtocolId,
    sid: vw_netsim::ProtocolId,
    h: SocketHandle,
}

fn bed(
    seed: u64,
    link: LinkConfig,
    client_cfg: TcpConfig,
    server_cfg: TcpConfig,
    data: &[u8],
) -> Bed {
    let mut world = World::new(seed);
    let a = world.add_host("client");
    let b = world.add_host("server");
    world.connect(a, b, link);
    let mut server = TcpStack::new(world.host_mac(b), world.host_ip(b));
    server.listen(80, server_cfg);
    let sid = world.add_protocol(b, Binding::EtherType(EtherType::IPV4), Box::new(server));
    let mut client = TcpStack::new(world.host_mac(a), world.host_ip(a));
    let h = client.connect(
        client_cfg,
        5000,
        Endpoint {
            mac: world.host_mac(b),
            ip: world.host_ip(b),
            port: 80,
        },
    );
    client.send(h, data);
    let cid = world.add_protocol(a, Binding::EtherType(EtherType::IPV4), Box::new(client));
    Bed {
        world,
        a,
        b,
        cid,
        sid,
        h,
    }
}

fn transfer_time(seed: u64, link: LinkConfig, server_cfg: TcpConfig, data: &[u8]) -> SimDuration {
    let mut tb = bed(seed, link, TcpConfig::default(), server_cfg, data);
    let start = tb.world.now();
    loop {
        tb.world.run_for(SimDuration::from_millis(1));
        let c = tb.world.protocol::<TcpStack>(tb.a, tb.cid).unwrap();
        if c.socket(tb.h).send_complete()
            || tb.world.now().saturating_since(start) > SimDuration::from_secs(20)
        {
            break tb.world.now().saturating_since(start);
        }
    }
}

#[test]
fn tiny_receive_window_throttles_the_sender() {
    // On a 5 ms-propagation path (RTT ≈ 10 ms), a 1000-byte advertised
    // window allows one segment per RTT — the receive window, not cwnd,
    // is the limiter, and the transfer takes ~30 RTTs instead of the few
    // slow-start RTTs an unthrottled transfer needs.
    let link = LinkConfig::fast_ethernet().propagation(SimDuration::from_millis(5));
    let data = vec![9u8; 30_000];
    let throttled = transfer_time(
        1,
        link,
        TcpConfig {
            recv_window: 1000,
            ..TcpConfig::default()
        },
        &data,
    );
    let unthrottled = transfer_time(2, link, TcpConfig::default(), &data);
    assert!(
        throttled > unthrottled * 2,
        "window-limited transfer ({throttled}) must be much slower than \
         unthrottled ({unthrottled})"
    );
    // ~30 segments, one RTT (10 ms) each.
    assert!(
        throttled >= SimDuration::from_millis(250),
        "1 segment per 10 ms RTT: {throttled}"
    );
}

/// Drops the Nth..Mth TCP data segments (first transmissions only pass).
struct SegmentDropper {
    seen: u64,
    drop_range: std::ops::Range<u64>,
}

impl Hook for SegmentDropper {
    fn name(&self) -> &str {
        "segment-dropper"
    }

    fn on_outbound(&mut self, _ctx: &mut Context<'_>, frame: Frame) -> Verdict {
        if let Some(tcp) = frame.tcp() {
            if !tcp.payload().is_empty() {
                self.seen += 1;
                if self.drop_range.contains(&self.seen) {
                    return Verdict::Consume;
                }
            }
        }
        Verdict::Accept(frame)
    }
}

#[test]
fn fast_retransmit_recovers_single_loss_quickly() {
    let data = vec![7u8; 60_000];
    let mut tb = bed(
        4,
        LinkConfig::fast_ethernet(),
        TcpConfig::default(),
        TcpConfig::default(),
        &data,
    );
    // Drop exactly the 12th data segment (by then the window is wide
    // enough for 3 dup acks to arrive).
    tb.world.add_hook(
        tb.a,
        Box::new(SegmentDropper {
            seen: 0,
            drop_range: 12..13,
        }),
    );
    tb.world.run_for(SimDuration::from_secs(3));
    let server = tb.world.protocol_mut::<TcpStack>(tb.b, tb.sid).unwrap();
    assert_eq!(
        server
            .socket_mut(SocketHandle::from_index(0))
            .take_received(),
        data
    );
    let client = tb.world.protocol::<TcpStack>(tb.a, tb.cid).unwrap();
    let stats = client.socket(tb.h).stats();
    assert_eq!(stats.fast_retransmits, 1, "recovered via dup acks");
    assert_eq!(stats.timeouts, 0, "no RTO needed");
}

#[test]
fn burst_loss_falls_back_to_rto() {
    let data = vec![5u8; 40_000];
    let mut tb = bed(
        5,
        LinkConfig::fast_ethernet(),
        TcpConfig::default(),
        TcpConfig::default(),
        &data,
    );
    // Drop segments 5..=12: too much loss for fast recovery alone.
    tb.world.add_hook(
        tb.a,
        Box::new(SegmentDropper {
            seen: 0,
            drop_range: 5..13,
        }),
    );
    tb.world.run_for(SimDuration::from_secs(10));
    let server = tb.world.protocol_mut::<TcpStack>(tb.b, tb.sid).unwrap();
    assert_eq!(
        server
            .socket_mut(SocketHandle::from_index(0))
            .take_received(),
        data
    );
    let client = tb.world.protocol::<TcpStack>(tb.a, tb.cid).unwrap();
    assert!(
        client.socket(tb.h).stats().timeouts >= 1,
        "RTO path exercised"
    );
}

#[test]
fn rto_adapts_to_path_latency() {
    // On a 20 ms-propagation link the initial 200 ms RTO must adapt
    // upward-resistant: after samples, spurious timeouts stay at zero
    // even though RTT (~40 ms) is a large fraction of the initial RTO.
    let slow = LinkConfig::fast_ethernet().propagation(SimDuration::from_millis(20));
    let data = vec![3u8; 100_000];
    let mut tb = bed(6, slow, TcpConfig::default(), TcpConfig::default(), &data);
    tb.world.run_for(SimDuration::from_secs(20));
    let server = tb.world.protocol_mut::<TcpStack>(tb.b, tb.sid).unwrap();
    assert_eq!(
        server
            .socket_mut(SocketHandle::from_index(0))
            .take_received(),
        data
    );
    let client = tb.world.protocol::<TcpStack>(tb.a, tb.cid).unwrap();
    assert_eq!(
        client.socket(tb.h).stats().timeouts,
        0,
        "an adaptive RTO never fires spuriously on a clean slow path"
    );
}

#[test]
fn full_close_reaches_time_wait_and_closed() {
    let mut tb = bed(
        7,
        LinkConfig::fast_ethernet(),
        TcpConfig::default(),
        TcpConfig::default(),
        b"x",
    );
    tb.world.run_for(SimDuration::from_millis(50));
    {
        let client = tb.world.protocol_mut::<TcpStack>(tb.a, tb.cid).unwrap();
        client.close(tb.h);
        tb.world.poke(tb.a, vw_netsim::HandlerRef::Protocol(tb.cid));
    }
    tb.world.run_for(SimDuration::from_millis(50));
    {
        let server = tb.world.protocol_mut::<TcpStack>(tb.b, tb.sid).unwrap();
        server.close(SocketHandle::from_index(0));
        tb.world.poke(tb.b, vw_netsim::HandlerRef::Protocol(tb.sid));
    }
    tb.world.run_for(SimDuration::from_secs(2));
    let client = tb.world.protocol::<TcpStack>(tb.a, tb.cid).unwrap();
    // TimeWait expires into Closed after its timer.
    assert_eq!(client.socket(tb.h).state(), TcpState::Closed);
    let server = tb.world.protocol::<TcpStack>(tb.b, tb.sid).unwrap();
    assert_eq!(
        server.socket(SocketHandle::from_index(0)).state(),
        TcpState::Closed
    );
}

#[test]
fn transfer_integrity_under_random_loss_many_seeds() {
    for seed in 10..16 {
        let data: Vec<u8> = (0..30_000u32)
            .map(|i| (i * 31 + seed as u32) as u8)
            .collect();
        let mut tb = bed(
            seed,
            LinkConfig::fast_ethernet().errors(ErrorModel::lossy(0.08)),
            TcpConfig::default(),
            TcpConfig::default(),
            &data,
        );
        tb.world.run_for(SimDuration::from_secs(30));
        let server = tb.world.protocol_mut::<TcpStack>(tb.b, tb.sid).unwrap();
        assert_eq!(
            server
                .socket_mut(SocketHandle::from_index(0))
                .take_received(),
            data,
            "seed {seed}: bytes must arrive intact and in order"
        );
    }
}

//! End-to-end TCP tests over the simulated LAN: handshake, bulk transfer,
//! loss recovery, congestion-window dynamics, and interaction with the RLL
//! hook position (pass-through hooks must not perturb TCP).

use vw_netsim::{Binding, ErrorModel, LinkConfig, PassThrough, SimDuration, World};
use vw_packet::EtherType;
use vw_tcpstack::{CcPhase, Endpoint, SocketHandle, TcpConfig, TcpStack, TcpState};

struct Testbed {
    world: World,
    client_node: vw_netsim::DeviceId,
    server_node: vw_netsim::DeviceId,
    client_id: vw_netsim::ProtocolId,
    server_id: vw_netsim::ProtocolId,
    handle: SocketHandle,
}

fn testbed(seed: u64, link: LinkConfig, cfg: TcpConfig, payload: &[u8]) -> Testbed {
    let mut world = World::new(seed);
    let a = world.add_host("client");
    let b = world.add_host("server");
    let sw = world.add_switch("sw0", 4);
    world.connect(a, sw, link);
    world.connect(b, sw, link);

    let mut server = TcpStack::new(world.host_mac(b), world.host_ip(b));
    server.listen(16384, cfg);
    let server_id = world.add_protocol(b, Binding::EtherType(EtherType::IPV4), Box::new(server));

    let mut client = TcpStack::new(world.host_mac(a), world.host_ip(a));
    let handle = client.connect(
        cfg,
        24576,
        Endpoint {
            mac: world.host_mac(b),
            ip: world.host_ip(b),
            port: 16384,
        },
    );
    client.send(handle, payload);
    let client_id = world.add_protocol(a, Binding::EtherType(EtherType::IPV4), Box::new(client));

    Testbed {
        world,
        client_node: a,
        server_node: b,
        client_id,
        server_id,
        handle,
    }
}

fn received(tb: &mut Testbed) -> Vec<u8> {
    let server = tb
        .world
        .protocol_mut::<TcpStack>(tb.server_node, tb.server_id)
        .unwrap();
    let mut out = Vec::new();
    let accepted: Vec<SocketHandle> = (0..server.socket_count())
        .map(SocketHandle::from_index)
        .collect();
    for h in accepted {
        out.extend(server.socket_mut(h).take_received());
    }
    out
}

#[test]
fn bulk_transfer_over_clean_lan() {
    let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
    let mut tb = testbed(1, LinkConfig::fast_ethernet(), TcpConfig::default(), &data);
    tb.world.run_for(SimDuration::from_secs(2));
    assert_eq!(received(&mut tb), data);
    let client = tb
        .world
        .protocol::<TcpStack>(tb.client_node, tb.client_id)
        .unwrap();
    let sock = client.socket(tb.handle);
    assert_eq!(sock.state(), TcpState::Established);
    assert!(sock.send_complete());
    assert_eq!(
        sock.stats().retransmissions,
        0,
        "clean LAN needs no rexmits"
    );
}

#[test]
fn transfer_survives_10_percent_loss() {
    let data: Vec<u8> = (0..50_000u32).map(|i| (i * 13) as u8).collect();
    let mut tb = testbed(
        2,
        LinkConfig::fast_ethernet().errors(ErrorModel::lossy(0.10)),
        TcpConfig::default(),
        &data,
    );
    tb.world.run_for(SimDuration::from_secs(30));
    assert_eq!(received(&mut tb), data, "reliable delivery despite loss");
    let client = tb
        .world
        .protocol::<TcpStack>(tb.client_node, tb.client_id)
        .unwrap();
    assert!(
        client.socket(tb.handle).stats().retransmissions > 0,
        "10% loss must force retransmissions"
    );
}

#[test]
fn transfer_survives_bit_corruption() {
    let data: Vec<u8> = (0..20_000u32).map(|i| (i ^ 0x5a) as u8).collect();
    let mut tb = testbed(
        3,
        LinkConfig::fast_ethernet().errors(ErrorModel::bit_errors(0.00005)),
        TcpConfig::default(),
        &data,
    );
    tb.world.run_for(SimDuration::from_secs(30));
    assert_eq!(
        received(&mut tb),
        data,
        "checksums + rexmit beat corruption"
    );
}

#[test]
fn slow_start_then_congestion_avoidance() {
    let data = vec![0u8; 40_000];
    let cfg = TcpConfig {
        initial_ssthresh: 4000, // 4 MSS: CA entered quickly
        ..TcpConfig::default()
    };
    let mut tb = testbed(4, LinkConfig::fast_ethernet(), cfg, &data);
    tb.world.run_for(SimDuration::from_secs(2));
    assert_eq!(received(&mut tb).len(), 40_000);
    let client = tb
        .world
        .protocol::<TcpStack>(tb.client_node, tb.client_id)
        .unwrap();
    let sock = client.socket(tb.handle);
    assert_eq!(sock.cc_phase(), CcPhase::CongestionAvoidance);
    assert!(sock.cwnd() > 4000, "window kept growing additively");
    assert!(
        sock.cwnd() < 40_000,
        "additive growth is much slower than exponential"
    );
}

#[test]
fn buggy_stack_ignores_ssthresh() {
    let data = vec![0u8; 40_000];
    let cfg = TcpConfig {
        initial_ssthresh: 4000,
        bug_never_enter_ca: true,
        ..TcpConfig::default()
    };
    let mut tb = testbed(5, LinkConfig::fast_ethernet(), cfg, &data);
    tb.world.run_for(SimDuration::from_secs(2));
    let client = tb
        .world
        .protocol::<TcpStack>(tb.client_node, tb.client_id)
        .unwrap();
    // 40 data segments acked → cwnd grew by ~40 MSS: exponential growth
    // blew straight through ssthresh.
    assert!(client.socket(tb.handle).cwnd() > 30_000);
}

#[test]
fn rate_limited_source_throttles_goodput() {
    let mut tb = testbed(6, LinkConfig::fast_ethernet(), TcpConfig::default(), &[]);
    {
        let client = tb
            .world
            .protocol_mut::<TcpStack>(tb.client_node, tb.client_id)
            .unwrap();
        client.attach_source(tb.handle, 10_000_000, 1_000_000); // 10 Mb/s, 1 MB
        let node = tb.client_node;
        let id = tb.client_id;
        tb.world.poke(node, vw_netsim::HandlerRef::Protocol(id));
    }
    tb.world.run_for(SimDuration::from_secs(3));
    let server = tb
        .world
        .protocol::<TcpStack>(tb.server_node, tb.server_id)
        .unwrap();
    // First (only) accepted socket holds the data.
    let h = SocketHandle::from_index(0);
    let sock = server.socket(h);
    assert_eq!(sock.stats().bytes_received, 1_000_000);
    let goodput = sock.recv_goodput_bps().expect("measurable");
    assert!(
        (goodput - 10_000_000.0).abs() / 10_000_000.0 < 0.15,
        "goodput {goodput} should track the 10 Mb/s offered rate"
    );
}

#[test]
fn passthrough_hooks_leave_tcp_untouched() {
    let data: Vec<u8> = (0..30_000u32).map(|i| i as u8).collect();
    let run = |hooks: bool| {
        let mut tb = testbed(7, LinkConfig::fast_ethernet(), TcpConfig::default(), &data);
        if hooks {
            tb.world.add_hook(tb.client_node, Box::new(PassThrough));
            tb.world.add_hook(tb.server_node, Box::new(PassThrough));
        }
        tb.world.run_for(SimDuration::from_secs(2));
        let client = tb
            .world
            .protocol::<TcpStack>(tb.client_node, tb.client_id)
            .unwrap();
        let stats = client.socket(tb.handle).stats();
        (stats.segments_sent, stats.retransmissions)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn graceful_close_end_to_end() {
    let mut tb = testbed(8, LinkConfig::fast_ethernet(), TcpConfig::default(), b"fin");
    {
        let node = tb.client_node;
        let id = tb.client_id;
        let client = tb.world.protocol_mut::<TcpStack>(node, id).unwrap();
        client.close(tb.handle);
        tb.world.poke(node, vw_netsim::HandlerRef::Protocol(id));
    }
    tb.world.run_for(SimDuration::from_secs(2));
    assert_eq!(received(&mut tb), b"fin");
    let server = tb
        .world
        .protocol::<TcpStack>(tb.server_node, tb.server_id)
        .unwrap();
    let h = SocketHandle::from_index(0);
    assert_eq!(server.socket(h).state(), TcpState::CloseWait);
    let client = tb
        .world
        .protocol::<TcpStack>(tb.client_node, tb.client_id)
        .unwrap();
    assert_eq!(client.socket(tb.handle).state(), TcpState::FinWait2);
}

#[test]
fn two_concurrent_connections_demux_correctly() {
    let mut world = World::new(9);
    let a = world.add_host("client");
    let b = world.add_host("server");
    let sw = world.add_switch("sw0", 4);
    world.connect(a, sw, LinkConfig::fast_ethernet());
    world.connect(b, sw, LinkConfig::fast_ethernet());

    let mut server = TcpStack::new(world.host_mac(b), world.host_ip(b));
    server.listen(80, TcpConfig::default());
    let sid = world.add_protocol(b, Binding::EtherType(EtherType::IPV4), Box::new(server));

    let mut client = TcpStack::new(world.host_mac(a), world.host_ip(a));
    let remote = Endpoint {
        mac: world.host_mac(b),
        ip: world.host_ip(b),
        port: 80,
    };
    let h1 = client.connect(TcpConfig::default(), 5001, remote);
    let h2 = client.connect(
        TcpConfig {
            iss: 90_000,
            ..TcpConfig::default()
        },
        5002,
        remote,
    );
    client.send(h1, b"first connection");
    client.send(h2, b"second connection");
    world.add_protocol(a, Binding::EtherType(EtherType::IPV4), Box::new(client));
    world.run_for(SimDuration::from_secs(1));

    let server = world.protocol_mut::<TcpStack>(b, sid).unwrap();
    let accepted = server.take_accepted();
    assert_eq!(accepted.len(), 2);
    let mut got: Vec<Vec<u8>> = accepted
        .into_iter()
        .map(|h| server.socket_mut(h).take_received())
        .collect();
    got.sort();
    assert_eq!(
        got,
        vec![b"first connection".to_vec(), b"second connection".to_vec()]
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let data = vec![3u8; 60_000];
        let mut tb = testbed(
            10,
            LinkConfig::fast_ethernet().errors(ErrorModel::lossy(0.05)),
            TcpConfig::default(),
            &data,
        );
        tb.world.run_for(SimDuration::from_secs(10));
        let client = tb
            .world
            .protocol::<TcpStack>(tb.client_node, tb.client_id)
            .unwrap();
        let s = client.socket(tb.handle).stats();
        (s.segments_sent, s.retransmissions, s.timeouts)
    };
    assert_eq!(run(), run());
}

//! The thread-local span collector, in two build flavours.
//!
//! With the `trace` feature (default) on, [`span`] stamps a monotone
//! clock and its guard's `Drop` pushes a [`SpanRecord`] into a
//! thread-local ring buffer; when the ring is full the oldest record is
//! evicted and counted. With the feature off, every item here is a
//! zero-sized no-op and call sites compile to nothing — pinned by the
//! `compile_out` test below and the `trace_overhead` bench group.
//!
//! The collector is strictly per-thread: [`enable`]/[`disable`] pair on
//! the calling thread, and traces from several threads merge at export
//! time via [`crate::chrome_json_many`] (each carries a process-unique
//! `tid`).

#[cfg(feature = "trace")]
mod imp {
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Instant;

    use crate::record::{Category, SpanRecord, Trace};

    /// Process-wide collector id counter, so traces gathered on several
    /// threads (or sequentially on one) stay separable in merged exports.
    static NEXT_TID: AtomicU32 = AtomicU32::new(1);

    struct Collector {
        base: Instant,
        depth: u16,
        seq: u64,
        /// Ring storage; grows to `cap` then wraps at `head`.
        ring: Vec<SpanRecord>,
        cap: usize,
        head: usize,
        dropped: u64,
        tid: u32,
    }

    impl Collector {
        fn push(&mut self, rec: SpanRecord) {
            if self.ring.len() < self.cap {
                self.ring.push(rec);
            } else {
                self.ring[self.head] = rec;
                self.head = (self.head + 1) % self.cap.max(1);
                self.dropped += 1;
            }
        }
    }

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    }

    /// An RAII span handle; its `Drop` records the completed span.
    /// Inert (a flag check only) when the collector is disabled.
    #[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
    pub struct SpanGuard {
        active: bool,
        name: &'static str,
        category: Category,
        start_ns: u64,
        depth: u16,
        seq: u64,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if !self.active || !ENABLED.with(|e| e.get()) {
                return;
            }
            COLLECTOR.with(|c| {
                let mut slot = c.borrow_mut();
                let Some(col) = slot.as_mut() else { return };
                let end_ns = col.base.elapsed().as_nanos() as u64;
                col.depth = col.depth.saturating_sub(1);
                let rec = SpanRecord {
                    name: self.name,
                    category: self.category,
                    start_ns: self.start_ns,
                    dur_ns: end_ns.saturating_sub(self.start_ns),
                    depth: self.depth,
                    seq: self.seq,
                };
                col.push(rec);
            });
        }
    }

    /// Opens a span; the returned guard records it when dropped.
    #[inline]
    pub fn span(name: &'static str, category: Category) -> SpanGuard {
        if !ENABLED.with(|e| e.get()) {
            return SpanGuard {
                active: false,
                name,
                category,
                start_ns: 0,
                depth: 0,
                seq: 0,
            };
        }
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let col = slot.as_mut().expect("enabled implies collector");
            let start_ns = col.base.elapsed().as_nanos() as u64;
            let depth = col.depth;
            col.depth = col.depth.saturating_add(1);
            let seq = col.seq;
            col.seq += 1;
            SpanGuard {
                active: true,
                name,
                category,
                start_ns,
                depth,
                seq,
            }
        })
    }

    /// Starts collecting spans on this thread into a fresh ring buffer
    /// of at most `capacity` records (~48 bytes each). Any previously
    /// collected but undrained records are discarded.
    pub fn enable(capacity: usize) {
        COLLECTOR.with(|c| {
            *c.borrow_mut() = Some(Collector {
                base: Instant::now(),
                depth: 0,
                seq: 0,
                ring: Vec::with_capacity(capacity.clamp(1, 1 << 20)),
                cap: capacity.max(1),
                head: 0,
                dropped: 0,
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            });
        });
        ENABLED.with(|e| e.set(true));
    }

    /// Stops collecting on this thread and drains the collected spans,
    /// sorted by creation order. Spans still open when `disable` is
    /// called are not recorded.
    pub fn disable() -> Trace {
        ENABLED.with(|e| e.set(false));
        COLLECTOR.with(|c| {
            let Some(col) = c.borrow_mut().take() else {
                return Trace::default();
            };
            let mut records = col.ring;
            // Completion order != creation order for nested spans (and
            // the ring may have wrapped); creation order is what the
            // stack-reconstruction analyses need.
            records.sort_unstable_by_key(|r| r.seq);
            Trace {
                records,
                dropped: col.dropped,
                tid: col.tid,
            }
        })
    }

    /// True while this thread is collecting.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.with(|e| e.get())
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use crate::record::{Category, Trace};

    /// Compiled-out flavour: a zero-sized guard with no `Drop`.
    #[derive(Debug, Clone, Copy)]
    pub struct SpanGuard;

    /// No-op; returns a zero-sized guard.
    #[inline(always)]
    pub fn span(_name: &'static str, _category: Category) -> SpanGuard {
        SpanGuard
    }

    /// No-op.
    #[inline(always)]
    pub fn enable(_capacity: usize) {}

    /// Always returns an empty trace.
    #[inline(always)]
    pub fn disable() -> Trace {
        Trace::default()
    }

    /// Always false.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }
}

pub use imp::{disable, enable, is_enabled, span, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Category;

    /// Feature-off pin: the guard is a true ZST, so instrumented call
    /// sites carry no data and no drop glue.
    #[cfg(not(feature = "trace"))]
    #[test]
    fn compile_out_makes_spans_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        enable(1024);
        assert!(!is_enabled());
        let _s = span("x", Category::Other);
        assert!(disable().is_empty());
    }

    #[cfg(feature = "trace")]
    mod enabled {
        use super::*;

        #[test]
        fn spans_record_nesting_and_order() {
            enable(1024);
            {
                let _run = span("run", Category::Run);
                for _ in 0..3 {
                    let _inner = span("inner", Category::Event);
                    let _leaf = span("leaf", Category::Classify);
                }
            }
            let trace = disable();
            assert_eq!(trace.records.len(), 7);
            assert_eq!(trace.dropped, 0);
            // Creation order with correct depths.
            assert_eq!(trace.records[0].name, "run");
            assert_eq!(trace.records[0].depth, 0);
            assert_eq!(trace.records[1].name, "inner");
            assert_eq!(trace.records[1].depth, 1);
            assert_eq!(trace.records[2].name, "leaf");
            assert_eq!(trace.records[2].depth, 2);
            assert!(trace
                .records
                .windows(2)
                .all(|w| w[0].seq < w[1].seq && w[0].start_ns <= w[1].start_ns));
            // The root span covers its children.
            let run = trace.records[0];
            assert!(trace
                .records
                .iter()
                .all(|r| r.start_ns + r.dur_ns <= run.start_ns + run.dur_ns));
        }

        #[test]
        fn disabled_thread_records_nothing() {
            assert!(!is_enabled());
            let _s = span("ignored", Category::Other);
            drop(_s);
            // No enable() happened, so disable() drains nothing.
            assert!(disable().is_empty());
        }

        #[test]
        fn ring_wraps_and_counts_drops() {
            enable(4);
            for _ in 0..10 {
                let _s = span("s", Category::Other);
            }
            let trace = disable();
            assert_eq!(trace.records.len(), 4);
            assert_eq!(trace.dropped, 6);
            // Survivors are the newest records, still in seq order.
            let seqs: Vec<u64> = trace.records.iter().map(|r| r.seq).collect();
            assert_eq!(seqs, vec![6, 7, 8, 9]);
        }

        #[test]
        fn re_enable_resets_state() {
            enable(16);
            {
                let _a = span("a", Category::Other);
            }
            enable(16);
            {
                let _b = span("b", Category::Other);
            }
            let trace = disable();
            assert_eq!(trace.records.len(), 1);
            assert_eq!(trace.records[0].name, "b");
            assert_eq!(trace.records[0].seq, 0);
        }

        #[test]
        fn span_open_across_disable_is_dropped_silently() {
            enable(16);
            let open = span("open", Category::Other);
            let trace = disable();
            assert!(trace.is_empty());
            drop(open); // must not panic or pollute a later trace
            enable(16);
            let trace = disable();
            assert!(trace.is_empty());
        }

        #[test]
        fn distinct_enables_get_distinct_tids() {
            enable(4);
            let a = disable();
            enable(4);
            let b = disable();
            assert_ne!(a.tid, b.tid);
        }
    }
}

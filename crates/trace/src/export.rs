//! Chrome trace-event JSON export and a dependency-free validator.
//!
//! The export targets the Trace Event Format's "JSON object" flavour:
//! a top-level object whose `traceEvents` array holds one complete
//! (`"ph":"X"`) event per span, timestamps in *microseconds* (floats, so
//! nanosecond precision survives). Perfetto and `chrome://tracing` load
//! it directly.
//!
//! The validator is a minimal recursive-descent JSON parser — the
//! vendored serde stub cannot deserialize, and the round-trip acceptance
//! test ("exported JSON parses and is non-empty") should not depend on
//! the writer's own formatting assumptions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::record::Trace;

/// Serializes several threads' traces into one Chrome trace-event JSON
/// document; each trace's spans appear under its own `tid`.
pub fn chrome_json_many(traces: &[Trace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        for r in &trace.records {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                json_string(r.name),
                r.category.as_str(),
                trace.tid,
                r.start_ns as f64 / 1_000.0,
                r.dur_ns as f64 / 1_000.0,
            );
        }
    }
    out.push_str("]}");
    out
}

/// Escapes a string into a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (validator-grade: numbers are `f64`, object keys
/// are unique-last).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slices
                    // at char boundaries are safe to scan byte-wise).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf8")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parses a Chrome trace-event JSON document and checks its shape: a
/// top-level object with a `traceEvents` array whose every element is a
/// complete event carrying `name`/`ph`/`ts`/`dur`/`pid`/`tid`. Returns
/// the event count.
pub fn validate_chrome_json(s: &str) -> Result<usize, String> {
    let doc = Json::parse(s)?;
    let obj = doc.as_obj().ok_or("top level is not an object")?;
    let events = obj
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_obj()
            .ok_or_else(|| format!("event {i} not an object"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} missing ph"))?;
        if ph != "X" {
            return Err(format!("event {i} has ph {ph:?}, expected complete event"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            let n = ev
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i} missing numeric {key}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("event {i} has invalid {key}: {n}"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Category, SpanRecord};

    #[test]
    fn export_round_trips_through_the_validator() {
        let trace = Trace {
            records: vec![
                SpanRecord {
                    name: "run",
                    category: Category::Run,
                    start_ns: 0,
                    dur_ns: 2_500,
                    depth: 0,
                    seq: 0,
                },
                SpanRecord {
                    name: "odd \"name\"\n",
                    category: Category::Other,
                    start_ns: 500,
                    dur_ns: 1_000,
                    depth: 1,
                    seq: 1,
                },
            ],
            dropped: 0,
            tid: 7,
        };
        let json = trace.to_chrome_json();
        assert_eq!(validate_chrome_json(&json).unwrap(), 2);
        let doc = Json::parse(&json).unwrap();
        let events = doc.as_obj().unwrap()["traceEvents"].as_arr().unwrap();
        let first = events[0].as_obj().unwrap();
        assert_eq!(first["name"].as_str(), Some("run"));
        assert_eq!(first["cat"].as_str(), Some("run"));
        assert_eq!(first["tid"].as_num(), Some(7.0));
        assert_eq!(first["dur"].as_num(), Some(2.5));
        let second = events[1].as_obj().unwrap();
        assert_eq!(second["name"].as_str(), Some("odd \"name\"\n"));
    }

    #[test]
    fn empty_trace_is_still_valid_but_has_no_events() {
        let json = Trace::default().to_chrome_json();
        assert_eq!(validate_chrome_json(&json).unwrap(), 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("").is_err());
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(
            validate_chrome_json("{\"traceEvents\":[]} trailing").is_err(),
            "trailing garbage must be rejected"
        );
        // Wrong phase: a begin event without an end.
        assert!(validate_chrome_json(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":1}]}"
        )
        .is_err());
    }

    #[test]
    fn parser_handles_general_json() {
        let v = Json::parse(
            "  {\"a\": [1, -2.5, 1e3], \"b\": {\"c\": null, \"d\": true}, \"s\": \"\\u0041\\n\"} ",
        )
        .unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj["a"].as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2].as_num(), Some(1000.0));
        assert_eq!(obj["s"].as_str(), Some("A\n"));
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
    }
}

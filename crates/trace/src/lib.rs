//! Span-based self-profiler for the VirtualWire reproduction.
//!
//! The simulator's hot path crosses four layers on every frame — the
//! netsim event loop, the engine's Figure 4(b) pipeline, the TCP stack,
//! and (in sweeps) the campaign executor. `vw-trace` makes that path
//! visible to itself: manually placed [`span`]s on a monotone clock feed
//! a thread-local ring buffer of fixed-size [`SpanRecord`]s, and the
//! collected [`Trace`] exports three ways:
//!
//! - **Chrome trace-event JSON** ([`Trace::to_chrome_json`]) — load in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! - **Folded stacks** ([`Trace::to_folded`]) — pipe to `flamegraph.pl`
//!   or any folded-stack viewer.
//! - **[`PhaseBreakdown`]** ([`Trace::phase_breakdown`]) — a per-category
//!   *self-time* attribution table answering "where do the ns/frame go",
//!   embeddable in `BENCH_<n>.json` and foldable into
//!   `vw-obs::MetricsRegistry` histograms.
//!
//! ## Cost model
//!
//! Recording is per-thread and lock-free: a span is two `Instant` reads
//! and a ring-buffer write. When the collector is not [`enable`]d the
//! guard constructor is a single thread-local flag read. With the crate's
//! `trace` feature disabled (`--no-default-features`), [`SpanGuard`] is a
//! zero-sized type and every call site compiles to nothing — the same
//! compile-out pattern as the core crate's `obs` feature.
//!
//! ## Determinism
//!
//! Spans read the *wall* clock, never the simulated clock, and nothing in
//! this crate feeds back into the simulation: enabling tracing cannot
//! change event order, digests, or campaign output. The wall-clock values
//! themselves are of course not reproducible across runs — traces are
//! diagnostics, not fixtures.
//!
//! ```
//! use vw_trace::{span, Category};
//!
//! vw_trace::enable(1 << 16);
//! {
//!     let _run = span("run", Category::Run);
//!     let _work = span("work", Category::Other);
//! }
//! let trace = vw_trace::disable();
//! # #[cfg(feature = "trace")]
//! assert_eq!(trace.records.len(), 2);
//! let json = trace.to_chrome_json();
//! vw_trace::validate_chrome_json(&json).unwrap();
//! ```

mod collect;
mod export;
mod record;

pub use collect::{disable, enable, is_enabled, span, SpanGuard};
pub use export::{chrome_json_many, validate_chrome_json, Json};
pub use record::{Category, CategoryStats, PhaseBreakdown, SpanRecord, Trace};

//! Span records, collected traces, and the phase-attribution analyses
//! (self-times, folded stacks, per-category breakdown).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Which layer of the stack a span belongs to. Categories are the unit
/// of the [`PhaseBreakdown`]: every span charges its *self* time (own
/// duration minus direct children) to exactly one category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// The root span bracketing a whole measured region. Its self time
    /// is whatever no deeper span accounts for.
    Run,
    /// netsim event loop: `pop_at` batches, timer dispatch, per-device
    /// delivery.
    Event,
    /// Engine filter-table classification (Figure 4(b) step 1).
    Classify,
    /// Engine term-evaluation / condition cascade (steps 2–3).
    Cascade,
    /// Engine fault-action application (step 4).
    Action,
    /// TCP stack segment send/receive.
    Tcp,
    /// Campaign executor per-instance work.
    Campaign,
    /// Anything else.
    Other,
}

impl Category {
    /// Every category, in display order.
    pub const ALL: [Category; 8] = [
        Category::Run,
        Category::Event,
        Category::Classify,
        Category::Cascade,
        Category::Action,
        Category::Tcp,
        Category::Campaign,
        Category::Other,
    ];

    /// Stable lowercase name used in exports and metric keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Run => "run",
            Category::Event => "event",
            Category::Classify => "classify",
            Category::Cascade => "cascade",
            Category::Action => "action",
            Category::Tcp => "tcp",
            Category::Campaign => "campaign",
            Category::Other => "other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed span. `start_ns` is relative to the collector's enable
/// time on its thread; `seq` is assigned at span *creation*, so sorting
/// by `seq` yields pre-order (parents before children) and `depth` gives
/// the nesting level at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub category: Category,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub depth: u16,
    pub seq: u64,
}

/// A drained collection of spans from one thread, sorted by `seq`
/// (creation order). Produced by [`crate::disable`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans in creation (`seq`) order.
    pub records: Vec<SpanRecord>,
    /// Records evicted because the ring buffer wrapped. When non-zero
    /// the oldest spans are missing and ancestor attribution for the
    /// survivors may be partial.
    pub dropped: u64,
    /// Collector id, unique per `enable()` call process-wide; used as
    /// the `tid` in Chrome exports so merged traces stay separable.
    pub tid: u32,
}

impl Trace {
    /// Number of collected spans.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Wall-clock width of the trace: from the earliest span start to
    /// the latest span end. Zero for an empty trace.
    pub fn wall_ns(&self) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for r in &self.records {
            lo = lo.min(r.start_ns);
            hi = hi.max(r.start_ns + r.dur_ns);
        }
        hi.saturating_sub(if lo == u64::MAX { 0 } else { lo })
    }

    /// Per-record *self* time: own duration minus the summed durations
    /// of direct children, parallel to `records`. Nesting is
    /// reconstructed from `(seq, depth)`: records are in creation order,
    /// so a record's parent is the nearest preceding record with a
    /// smaller depth that is still open.
    pub fn self_times(&self) -> Vec<u64> {
        let mut child_sum = vec![0u64; self.records.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            while let Some(&top) = stack.last() {
                if self.records[top].depth >= r.depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                child_sum[parent] += r.dur_ns;
            }
            stack.push(i);
        }
        // Clamp: clock jitter or ring eviction can make children appear
        // to outlast a parent; self time is never negative.
        self.records
            .iter()
            .zip(&child_sum)
            .map(|(r, &c)| r.dur_ns.saturating_sub(c))
            .collect()
    }

    /// Folded-stack text: one `a;b;c <self_ns>` line per distinct stack
    /// path, sorted by path, suitable for `flamegraph.pl` (counts are
    /// nanoseconds of self time).
    pub fn to_folded(&self) -> String {
        let selfs = self.self_times();
        let mut stack: Vec<(u16, &'static str)> = Vec::new();
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            while stack.last().is_some_and(|&(d, _)| d >= r.depth) {
                stack.pop();
            }
            stack.push((r.depth, r.name));
            if selfs[i] == 0 {
                continue;
            }
            let mut path = String::new();
            for (j, &(_, name)) in stack.iter().enumerate() {
                if j > 0 {
                    path.push(';');
                }
                path.push_str(name);
            }
            *agg.entry(path).or_default() += selfs[i];
        }
        let mut out = String::new();
        for (path, ns) in &agg {
            let _ = writeln!(out, "{path} {ns}");
        }
        out
    }

    /// Chrome trace-event JSON for this trace alone. See
    /// [`crate::chrome_json_many`] to merge several threads' traces into
    /// one file.
    pub fn to_chrome_json(&self) -> String {
        crate::export::chrome_json_many(std::slice::from_ref(self))
    }

    /// Aggregates self time by [`Category`].
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let selfs = self.self_times();
        let mut stats: BTreeMap<Category, CategoryStats> = BTreeMap::new();
        for (r, &s) in self.records.iter().zip(&selfs) {
            let e = stats.entry(r.category).or_default();
            e.spans += 1;
            e.total_ns += r.dur_ns;
            e.self_ns += s;
        }
        PhaseBreakdown {
            categories: Category::ALL
                .iter()
                .filter_map(|&c| stats.get(&c).map(|&s| (c, s)))
                .collect(),
            wall_ns: self.wall_ns(),
            dropped: self.dropped,
        }
    }
}

/// Aggregate timing for one [`Category`]: how many spans, their summed
/// durations (children included — nested categories overlap here), and
/// their summed *self* time (exclusive — self times partition the wall
/// clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryStats {
    pub spans: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

/// Per-category self-time attribution for a trace. When the measured
/// region is bracketed by a single root span (category
/// [`Category::Run`]), the `self_ns` values sum to exactly the root
/// span's duration: every nanosecond of the run is charged to precisely
/// one category.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// `(category, stats)` in [`Category::ALL`] order; categories with
    /// no spans are omitted.
    pub categories: Vec<(Category, CategoryStats)>,
    /// Trace width (earliest start to latest end).
    pub wall_ns: u64,
    /// Ring-buffer evictions in the underlying trace.
    pub dropped: u64,
}

impl PhaseBreakdown {
    /// Sum of self time across all categories. With a single root span
    /// this equals the root's duration.
    pub fn total_self_ns(&self) -> u64 {
        self.categories.iter().map(|(_, s)| s.self_ns).sum()
    }

    /// Stats for one category, if any spans were recorded in it.
    pub fn get(&self, cat: Category) -> Option<CategoryStats> {
        self.categories
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|&(_, s)| s)
    }

    /// Human-readable attribution table.
    pub fn to_table(&self) -> String {
        let total = self.total_self_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>14} {:>14} {:>7}",
            "phase", "spans", "total_ns", "self_ns", "self%"
        );
        for (cat, s) in &self.categories {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>14} {:>14} {:>6.1}%",
                cat.as_str(),
                s.spans,
                s.total_ns,
                s.self_ns,
                100.0 * s.self_ns as f64 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>14} {:>14} {:>7}",
            "wall",
            "",
            self.wall_ns,
            self.total_self_ns(),
            ""
        );
        if self.dropped > 0 {
            let _ = writeln!(out, "(ring buffer dropped {} records)", self.dropped);
        }
        out
    }

    /// JSON object (hand-rolled; the vendored serde stub cannot
    /// serialize) for embedding in `BENCH_<n>.json`:
    /// `{"wall_ns":..,"dropped":..,"categories":{"event":{"spans":..,"total_ns":..,"self_ns":..},..}}`
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"wall_ns\":{},\"total_self_ns\":{},\"dropped\":{},\"categories\":{{",
            self.wall_ns,
            self.total_self_ns(),
            self.dropped
        );
        for (i, (cat, s)) in self.categories.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"spans\":{},\"total_ns\":{},\"self_ns\":{}}}",
                cat.as_str(),
                s.spans,
                s.total_ns,
                s.self_ns
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        name: &'static str,
        category: Category,
        start_ns: u64,
        dur_ns: u64,
        depth: u16,
        seq: u64,
    ) -> SpanRecord {
        SpanRecord {
            name,
            category,
            start_ns,
            dur_ns,
            depth,
            seq,
        }
    }

    /// run(0..100) { a(10..40) { b(15..25) } c(50..90) }
    fn sample() -> Trace {
        Trace {
            records: vec![
                rec("run", Category::Run, 0, 100, 0, 0),
                rec("a", Category::Event, 10, 30, 1, 1),
                rec("b", Category::Classify, 15, 10, 2, 2),
                rec("c", Category::Tcp, 50, 40, 1, 3),
            ],
            dropped: 0,
            tid: 1,
        }
    }

    #[test]
    fn self_times_subtract_direct_children() {
        let t = sample();
        assert_eq!(t.self_times(), vec![100 - 30 - 40, 30 - 10, 10, 40]);
    }

    #[test]
    fn self_times_partition_the_root() {
        let t = sample();
        let total: u64 = t.self_times().iter().sum();
        assert_eq!(total, 100);
        assert_eq!(t.phase_breakdown().total_self_ns(), 100);
        assert_eq!(t.wall_ns(), 100);
    }

    #[test]
    fn siblings_at_same_depth_do_not_nest() {
        // x(0..10) then y(10..20) at the same depth: y is not x's child.
        let t = Trace {
            records: vec![
                rec("x", Category::Other, 0, 10, 0, 0),
                rec("y", Category::Other, 10, 10, 0, 1),
            ],
            dropped: 0,
            tid: 0,
        };
        assert_eq!(t.self_times(), vec![10, 10]);
    }

    #[test]
    fn folded_paths_follow_nesting() {
        let folded = sample().to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["run 30", "run;a 20", "run;a;b 10", "run;c 40"]);
    }

    #[test]
    fn breakdown_groups_by_category() {
        let pb = sample().phase_breakdown();
        assert_eq!(
            pb.get(Category::Event),
            Some(CategoryStats {
                spans: 1,
                total_ns: 30,
                self_ns: 20
            })
        );
        assert_eq!(pb.get(Category::Campaign), None);
        let json = pb.to_json();
        assert!(json.contains("\"classify\":{\"spans\":1,\"total_ns\":10,\"self_ns\":10}"));
        let table = pb.to_table();
        assert!(table.contains("classify"));
        assert!(table.contains("wall"));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.wall_ns(), 0);
        assert_eq!(t.phase_breakdown().total_self_ns(), 0);
        assert_eq!(t.to_folded(), "");
    }
}

//! Campaign engine demo: sweep a two-fault drop scenario across
//! thresholds, seeds, and control-plane impairments; dedup the outcomes;
//! shrink a failing instance to a minimal reproducer.
//!
//! ```text
//! cargo run --release --example campaign_sweep
//! ```
//!
//! The sweep crosses two `DROP` trigger thresholds (some beyond the
//! 30-datagram flow, so they never fire) with three simulator seeds and
//! two control-plane impairments: 6 x 6 x 3 x 2 = 216 instances. The
//! outcome store folds those into a handful of equivalence classes —
//! double fault (flagged), single fault, no fault — and the shrinker
//! reduces a flagged instance's nine rules to the four that matter.

use std::time::Instant;

use virtualwire::{CostModel, EngineConfig, ObsLevel, Runner, ScriptError};
use vw_analysis::CampaignAnalyzer;
use vw_campaign::{
    run_campaign, shrink, Axis, CampaignSpec, ExecConfig, Instance, RunConfig, ShrinkOptions,
};
use vw_fsl::TableSet;
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, ControlImpairment, LinkConfig, World};
use vw_packet::EtherType;

/// A 600-datagram UDP flow with two swept drop faults and decoy rules
/// for the shrinker to discard. `Drops` counts injected faults on node1,
/// so the double-fault flag is exact and immune to in-flight lag.
const SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    tcp_any: (23 1 0x06)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END

    SCENARIO Double_Drop 500msec
    Sent: (udp_data, node1, node2, SEND)
    Rcvd: (udp_data, node1, node2, RECV)
    Drops: (node1)
    Noise: (node1)
    (TRUE) >> ENABLE_CNTR(Sent);
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 70)) >> INCR_CNTR(Noise, 1);
    ((Rcvd = 110)) >> INCR_CNTR(Noise, 2);
    ((Noise > 100)) >> FLAG_ERR "noise overflow";
    ((Sent = 50)) >> DROP(udp_data, node1, node2, SEND); INCR_CNTR(Drops, 1);
    ((Sent = 150)) >> DROP(udp_data, node1, node2, SEND); INCR_CNTR(Drops, 1);
    ((Drops >= 2)) >> FLAG_ERR "double fault";
    ((Sent = 600)) >> STOP;
    END
"#;

/// Datagrams per flow — sized so one instance is a few milliseconds of
/// real work and the thread pool has something to amortize against.
const DATAGRAMS: u64 = 600;

/// Builds one testbed: two hosts behind a switch, a 30-datagram CBR
/// source on node1, a sink on node2, engines installed fallibly.
fn setup(tables: &TableSet, run: &RunConfig) -> Result<(World, Runner), ScriptError> {
    let mut world = World::with_impairment(run.seed, run.impairment);
    let nodes = Runner::create_hosts(&mut world, tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    // Faults-level recording keeps the per-packet hot path untouched but
    // populates the cascade-depth and classify-to-action histograms the
    // campaign analyzer aggregates below; the calibrated cost model gives
    // those latencies the paper-testbed scale instead of all-zeros.
    let runner = Runner::try_install(
        &mut world,
        tables.clone(),
        EngineConfig {
            obs: ObsLevel::Faults,
            cost: CostModel::calibrated(),
            ..EngineConfig::default()
        },
    )?;
    runner.settle(&mut world);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        2_000_000,
        200,
        DATAGRAMS * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    Ok((world, runner))
}

fn spec() -> CampaignSpec {
    let program = vw_fsl::parse(SCRIPT).expect("demo script parses");
    CampaignSpec::new("double_drop_sweep", program)
        .axis(Axis::threshold_at(
            "Sent",
            0,
            vec![20, 40, 60, 80, 100, 700],
        ))
        .axis(Axis::threshold_at(
            "Sent",
            1,
            vec![150, 200, 250, 650, 750, 800],
        ))
        .axis(Axis::seeds(vec![1, 2, 3]))
        .axis(Axis::impairments(vec![
            ControlImpairment::none(),
            ControlImpairment::dropping(0.05),
        ]))
}

fn main() {
    let spec = spec();
    let total = spec.total();
    println!("campaign `{}`: {} instances", spec.name, total);

    // Sweep the thread counts, checking both the speedup and the
    // determinism story: every pool size must render identical JSONL —
    // for the deduped outcomes AND for the analyzer's aggregate.
    let mut baseline: Option<(String, f64)> = None;
    let mut aggregate_baseline: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let result =
            run_campaign(&spec, &setup, &ExecConfig::threads(threads)).expect("campaign runs");
        let elapsed = started.elapsed().as_secs_f64();
        let jsonl = result.to_jsonl();
        let aggregate = CampaignAnalyzer::new()
            .push_result(&result)
            .analyze()
            .to_jsonl();
        match &aggregate_baseline {
            None => aggregate_baseline = Some(aggregate),
            Some(reference) => assert_eq!(
                reference, &aggregate,
                "aggregate analytics must be byte-identical at any thread count"
            ),
        }
        let rate = total as f64 / elapsed;
        match &baseline {
            None => {
                println!(
                    "  {threads} thread : {elapsed:7.3}s  {rate:7.1} scenarios/s  \
                     {} classes",
                    result.classes.len()
                );
                baseline = Some((jsonl, elapsed));
            }
            Some((reference, t1)) => {
                assert_eq!(
                    reference, &jsonl,
                    "JSONL must be byte-identical at any thread count"
                );
                println!(
                    "  {threads} threads: {elapsed:7.3}s  {rate:7.1} scenarios/s  \
                     speedup x{:.2}  (identical JSONL)",
                    t1 / elapsed
                );
            }
        }
    }

    let (jsonl, _) = baseline.unwrap();
    println!("\n--- deduped outcome classes ---");
    print!("{jsonl}");

    // Re-run once more (any thread count — they're all equivalent) to get
    // a result object to mine for analytics and a failing instance.
    let result = run_campaign(&spec, &setup, &ExecConfig::threads(4)).unwrap();

    // Campaign-wide analytics: fold all 216 instances into one aggregate
    // with per-axis breakdowns and merged latency distributions.
    let report = CampaignAnalyzer::new().push_result(&result).analyze();
    println!("\n--- campaign analytics ---");
    print!("{}", report.render());
    assert!(
        report.breakdown("seed").is_some() && report.breakdown("impairment").is_some(),
        "the aggregate must break totals down per sweep axis"
    );

    // The regression workflow: pretend a code change fattened the
    // classify-to-action tail, then diff against the healthy baseline.
    let mut degraded = report.clone();
    for (name, hist) in &mut degraded.histograms {
        if name == "classify_to_action_ns" {
            let tail = 50 * hist.max();
            for _ in 0..hist.count() / 4 {
                hist.observe(tail);
            }
        }
    }
    let regressions = degraded.diff(&report, 0.10);
    println!("\n--- diff vs healthy baseline (injected 50x tail latency) ---");
    for r in &regressions {
        println!("{}", r.render());
    }
    assert!(
        regressions
            .iter()
            .any(|r| r.metric.contains("classify_to_action_ns")),
        "a 50x tail must trip the p99 regression gate"
    );

    let failing = result
        .matching(|d| d.has_error_containing("double fault"))
        .first()
        .map(|r| r.index)
        .expect("the sweep produces double-fault instances");
    let instance: Instance = spec
        .enumerate()
        .unwrap()
        .into_iter()
        .find(|i| i.index == failing)
        .unwrap();
    println!("\nshrinking instance #{failing} {:?}", instance.labels);

    let opts = ShrinkOptions {
        axes: spec.axes.clone(),
        ..ShrinkOptions::default()
    };
    let shrunk = shrink(
        &instance,
        &setup,
        |d| d.has_error_containing("double fault"),
        &opts,
    )
    .expect("shrink succeeds");
    println!(
        "shrunk {} rules -> {} (removed {} counters, {} filters; {} runs; bisected {:?})",
        shrunk.rules_before,
        shrunk.rules_after,
        shrunk.counters_removed,
        shrunk.filters_removed,
        shrunk.runs,
        shrunk.bisected,
    );
    println!("\n--- minimal reproducer ---\n{}", shrunk.script());
    assert!(
        shrunk.rules_after * 2 <= shrunk.rules_before,
        "shrinker halves the rule count"
    );
}

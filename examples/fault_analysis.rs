//! The offline half of the Fault Analysis Engine: merge the per-node
//! flight recorder streams of a three-node distributed run into one
//! globally ordered timeline, check it against the built-in causal
//! invariants, and then demonstrate a detection by seeding a violation —
//! erasing the control-plane deliveries so a remote term flip loses the
//! message that justified it.
//!
//! ```text
//! cargo run --example fault_analysis
//! ```

use virtualwire::{compile_script, EngineConfig, ObsEvent, ObsLevel, Runner};
use vw_analysis::{DistributedTimeline, InvariantChecker};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

// The Figure 6 pattern: the counter lives on node2, the action it
// triggers executes on node3 — forcing a TERM_STATUS control message
// across the wire, which is exactly the happens-before edge the merge
// needs to order the two engines' streams.
const SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    node3 02:00:00:00:00:03 192.168.1.4
    END
    SCENARIO RemoteFail
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 3)) >> FAIL(node3);
    ((Rcvd = 8)) >> STOP;
    END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tables = compile_script(SCRIPT)?;
    let mut world = World::new(2);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 8);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(
        &mut world,
        tables.clone(),
        EngineConfig {
            obs: ObsLevel::Full,
            ..EngineConfig::default()
        },
    );
    runner.settle(&mut world);

    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000,
        200,
        10 * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(1));

    // One globally ordered view of all three engines: control-plane
    // (seq, ack) pairs become happens-before edges, so node2's term flip
    // and send come before node3's delivery and FAIL — regardless of how
    // the per-node streams were interleaved on arrival.
    let timeline = DistributedTimeline::from_report(&report);
    println!(
        "=== merged distributed timeline ({} nodes) ===",
        timeline.nodes().len()
    );
    print!("{}", timeline.render(&report.symbols));

    let checker = InvariantChecker::with_builtins();
    let violations = checker.check(&timeline, &tables);
    println!("\n=== invariant check (clean run) ===");
    println!(
        "{} invariants over {} events: {} violations",
        vw_analysis::builtins().len(),
        timeline.len(),
        violations.len()
    );
    assert!(
        violations.is_empty(),
        "a correct run must satisfy every invariant"
    );

    // Now seed the exact bug the checker exists to catch: drop every
    // control-plane delivery from the record, as if node3's flight
    // recorder lost them. Its remote TermFlipped is now an orphan — a
    // state change with no message to justify it.
    let doctored: Vec<ObsEvent> = report
        .events
        .iter()
        .filter(|e| !matches!(e, ObsEvent::ControlDelivered { .. }))
        .cloned()
        .collect();
    let doctored_timeline = DistributedTimeline::from_events(&doctored);
    let seeded = checker.check(&doctored_timeline, &tables);
    println!("\n=== invariant check (deliveries erased) ===");
    for violation in &seeded {
        print!("{}", violation.render(&report.symbols));
    }
    assert!(
        seeded.iter().any(|v| v.invariant == "remote-term-delivery"),
        "erasing deliveries must orphan the remote term flip"
    );

    println!("\n=== engine report ===");
    print!("{}", report.render());
    Ok(())
}

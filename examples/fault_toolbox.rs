//! A tour of every Table II fault primitive, each applied to the same UDP
//! flow, with the effect read back from the packet trace.
//!
//! ```text
//! cargo run --example fault_toolbox
//! ```

use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

const PREAMBLE: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
"#;

/// Runs one scenario over a fresh 20-datagram flow; returns (delivered,
/// engine stats line, report line).
fn run_one(name: &str, rules: &str) -> Result<(), Box<dyn std::error::Error>> {
    let script = format!(
        "{PREAMBLE}
        SCENARIO {name}
        Sent: (udp_data, node1, node2, SEND)
        (TRUE) >> ENABLE_CNTR(Sent);
        {rules}
        END"
    );
    let tables = compile_script(&script)?;
    let mut world = World::new(7);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);
    let sink = world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000,
        200,
        20 * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(2));
    let s = runner.engine(&world, "node1").unwrap().stats();
    let delivered = world.protocol::<UdpSink>(nodes[1], sink).unwrap().frames();
    println!(
        "{name:<18} delivered {delivered:>2}/20   \
         drops={} dups={} delays={} reorders={} modifies={}   errors={}",
        s.drops,
        s.dups,
        s.delays,
        s.reorders,
        s.modifies,
        report.errors.len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table II fault primitives over a 20-datagram UDP flow:\n");
    run_one(
        "Drop_Window",
        "((Sent > 5) && (Sent <= 10)) >> DROP(udp_data, node1, node2, SEND);",
    )?;
    run_one(
        "Dup_Every_Fifth",
        "((Sent = 5)) >> DUP(udp_data, node1, node2, SEND);",
    )?;
    run_one(
        "Delay_Batch",
        "((Sent <= 3)) >> DELAY(udp_data, node1, node2, SEND, 40msec);",
    )?;
    run_one(
        "Reorder_Triples",
        "((Sent > 0)) >> REORDER(udp_data, node1, node2, SEND, 3, (2 0 1));",
    )?;
    run_one(
        "Corrupt_All",
        "((Sent > 0)) >> MODIFY(udp_data, node1, node2, SEND, RANDOM);",
    )?;
    run_one(
        "Rewrite_Bytes",
        "((Sent = 1)) >> MODIFY(udp_data, node1, node2, SEND, (42 2 0xBEEF));",
    )?;
    run_one(
        "Flag_On_Tenth",
        "((Sent = 10)) >> FLAG_ERR \"ten datagrams seen\";",
    )?;
    println!(
        "\n(MODIFY leaves checksums to the user, as the paper specifies — the \
         checksum-verifying sink discards corrupted datagrams.)"
    );
    Ok(())
}

//! The flight recorder end to end: run a faulted scenario with full
//! causal tracing, dump the event timeline, unwind the flagged error into
//! its causal chain, snapshot the metrics registry as JSON lines, and
//! export the wire trace as a pcap capture that opens in Wireshark.
//!
//! ```text
//! cargo run --example obs_flight_recorder
//! ```

use virtualwire::{compile_script, pcap, EngineConfig, ObsLevel, Runner};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

const SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO FlightRecorder
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 3)) >> DROP(udp_data, node1, node2, SEND); FLAG_ERR "third packet dropped";
    ((Sent = 6)) >> STOP;
    END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tables = compile_script(SCRIPT)?;
    let mut world = World::new(7);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(
        &mut world,
        tables,
        EngineConfig {
            obs: ObsLevel::Full,
            ..EngineConfig::default()
        },
    );
    runner.settle(&mut world);

    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000,
        120,
        20 * 120,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(1));

    println!("=== causal event timeline ===");
    for event in &report.events {
        println!("{}", event.render(&report.symbols));
    }

    println!("\n=== why did the run flag an error? ===");
    for error in &report.errors {
        println!("error: {error}");
        if let Some(chain) = report.explain(error) {
            print!("{}", chain.render(&report.symbols));
        }
    }

    println!("\n=== metrics snapshot (JSON lines) ===");
    print!("{}", report.metrics.to_jsonl());

    let capture = pcap::export_trace(world.trace());
    let packets = pcap::parse(&capture)?;
    println!(
        "=== pcap export: {} bytes, {} packets (nanosecond libpcap, \
         LINKTYPE_ETHERNET — pipe to a file and open in Wireshark) ===",
        capture.len(),
        packets.len()
    );

    println!("\n=== report ===");
    print!("{report}");
    Ok(())
}

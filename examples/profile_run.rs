//! End-to-end self-profiling demo: run the Section 6.1 TCP
//! congestion-control experiment with span collection on, then export
//! everything the profiler produces —
//!
//! - `target/profile_run/trace.json`: Chrome trace-event JSON; open it
//!   in Perfetto (ui.perfetto.dev) or `chrome://tracing`,
//! - `target/profile_run/stacks.folded`: folded stacks for
//!   `flamegraph.pl` (counts are nanoseconds of self time),
//! - a per-phase self-time table on stdout.
//!
//! ```text
//! cargo run --example profile_run
//! ```
//!
//! The run self-checks: the Chrome export must round-trip through the
//! crate's JSON parser, and the per-category self times must account
//! for the whole measured region.

use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_tcpstack::{Endpoint, TcpConfig, TcpStack};
use vw_trace::Category;

const SCRIPT: &str = include_str!("../scripts/tcp_ss_ca.fsl");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== profiling one traced run of the Section 6.1 experiment ===\n");

    // Collect spans from here to `disable()`; one root span brackets the
    // whole measured region so self times partition it exactly.
    vw_trace::enable(1 << 19);
    let (report, trace) = {
        let _run = vw_trace::span("run", Category::Run);

        let tables = compile_script(SCRIPT)?;
        let mut world = World::new(1);
        let nodes = Runner::create_hosts(&mut world, &tables);
        let sw = world.add_switch("sw0", 4);
        for &n in &nodes {
            world.connect(n, sw, LinkConfig::fast_ethernet());
        }
        let runner = Runner::install(&mut world, tables, EngineConfig::default());
        runner.settle(&mut world);

        let tcp_cfg = TcpConfig::default();
        let mut server = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
        server.listen(0x4000, tcp_cfg);
        world.add_protocol(
            nodes[1],
            Binding::EtherType(EtherType::IPV4),
            Box::new(server),
        );
        let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
        let handle = client.connect(
            tcp_cfg,
            0x6000,
            Endpoint {
                mac: world.host_mac(nodes[1]),
                ip: world.host_ip(nodes[1]),
                port: 0x4000,
            },
        );
        client.send(handle, &vec![0x42u8; 80_000]);
        world.add_protocol(
            nodes[0],
            Binding::EtherType(EtherType::IPV4),
            Box::new(client),
        );

        let report = runner.run(&mut world, SimDuration::from_secs(10));
        drop(_run);
        (report, vw_trace::disable())
    };

    assert!(
        !trace.is_empty(),
        "the traced run recorded no spans — was the `trace` feature disabled?"
    );

    let out_dir = std::path::Path::new("target/profile_run");
    std::fs::create_dir_all(out_dir)?;

    let chrome = trace.to_chrome_json();
    let events = vw_trace::validate_chrome_json(&chrome)
        .map_err(|e| format!("Chrome export failed validation: {e}"))?;
    let trace_path = out_dir.join("trace.json");
    std::fs::write(&trace_path, &chrome)?;

    let folded = trace.to_folded();
    let folded_path = out_dir.join("stacks.folded");
    std::fs::write(&folded_path, &folded)?;

    let breakdown = trace.phase_breakdown();
    println!(
        "scenario: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    println!(
        "spans: {} collected, {} dropped ({} trace events)\n",
        trace.len(),
        trace.dropped,
        events
    );
    print!("{}", breakdown.to_table());
    println!();
    println!(
        "wrote {} ({} bytes) — load it at ui.perfetto.dev",
        trace_path.display(),
        chrome.len()
    );
    println!(
        "wrote {} ({} stack paths) — feed it to flamegraph.pl",
        folded_path.display(),
        folded.lines().count()
    );

    // Self-check: every engine phase of the Figure 4(b) pipeline and the
    // TCP stack showed up, and self times cover the run.
    for cat in [Category::Event, Category::Classify, Category::Tcp] {
        assert!(
            breakdown.get(cat).is_some_and(|s| s.spans > 0),
            "no spans in category {cat}"
        );
    }
    let (total, wall) = (breakdown.total_self_ns(), breakdown.wall_ns.max(1));
    let error = (total as f64 - wall as f64).abs() / wall as f64;
    assert!(
        error < 0.05,
        "self times ({total} ns) do not cover the wall clock ({wall} ns)"
    );
    println!(
        "\nself-check OK: self times cover {:.2}% of the run",
        100.0 * total as f64 / wall as f64
    );
    Ok(())
}

//! Quickstart: inject your first fault in ~40 lines.
//!
//! A 10-line FSL script drops the third UDP datagram of a flow and stops
//! the run after ten. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

const SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO Drop_Third_Datagram
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 3)) >> DROP(udp_data, node1, node2, SEND);
    ((Sent = 10)) >> STOP;
    END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the script into VirtualWire's six tables.
    let tables = compile_script(SCRIPT)?;
    println!(
        "compiled scenario `{}`: {} filters, {} nodes, {} counters, {} conditions",
        tables.scenario,
        tables.filters.len(),
        tables.nodes.len(),
        tables.counters.len(),
        tables.conditions.len()
    );

    // 2. Build a testbed from the script's own node table.
    let mut world = World::new(42);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }

    // 3. Install the engines; the control node distributes the tables
    //    over the control plane.
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    // 4. Attach a workload: node1 floods UDP datagrams at node2.
    let sink = world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000, // 1 Mb/s offered
        200,       // 200-byte datagrams
        1_000_000,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );

    // 5. Run and report.
    let report = runner.run(&mut world, SimDuration::from_secs(2));
    print!("{}", report.render());

    let sink = world.protocol::<UdpSink>(nodes[1], sink).unwrap();
    println!("datagrams delivered to the sink: {}", sink.frames());
    println!(
        "faults injected at node1: {} drop(s)",
        runner.engine(&world, "node1").unwrap().stats().drops
    );
    Ok(())
}

//! An unattended regression suite: one script file, six fault scenarios,
//! one pass/fail summary — the workflow the paper's introduction motivates
//! ("a particularly important feature for regression testing").
//!
//! ```text
//! cargo run --example regression_suite
//! ```
//!
//! Every scenario runs against a fresh deterministic testbed carrying a
//! 30-datagram UDP flow. The last scenario is an intentional red test (it
//! flags an error by design) to show failures surface in the summary.

use virtualwire::{EngineConfig, Runner, Suite};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

const SUITE: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END

    SCENARIO Flow_Completes 500msec
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 30)) >> STOP;
    END

    SCENARIO Survives_One_Drop 500msec
    Sent: (udp_data, node1, node2, SEND)
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Sent); ENABLE_CNTR(Rcvd);
    ((Sent = 5)) >> DROP(udp_data, node1, node2, SEND);
    ((Rcvd = 29)) >> STOP;
    END

    SCENARIO Survives_Duplication 500msec
    Sent: (udp_data, node1, node2, SEND)
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Sent); ENABLE_CNTR(Rcvd);
    ((Sent = 7)) >> DUP(udp_data, node1, node2, SEND);
    ((Rcvd = 31)) >> STOP;
    END

    SCENARIO Survives_Delay 500msec
    Sent: (udp_data, node1, node2, SEND)
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Sent); ENABLE_CNTR(Rcvd);
    ((Sent <= 2)) >> DELAY(udp_data, node1, node2, SEND, 20msec);
    ((Rcvd = 30)) >> STOP;
    END

    SCENARIO Survives_Reordering 500msec
    Sent: (udp_data, node1, node2, SEND)
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Sent); ENABLE_CNTR(Rcvd);
    ((Sent > 0)) >> REORDER(udp_data, node1, node2, SEND, 3, (2 0 1));
    ((Rcvd = 30)) >> STOP;
    END

    SCENARIO Red_Test_Flags_By_Design 200msec
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 10)) >> FLAG_ERR "intentional red test"; STOP;
    END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::from_source(SUITE)?;
    println!("running {} scenarios unattended...\n", suite.len());

    let result = suite.run(SimDuration::from_secs(5), |tables| {
        let mut world = World::new(0xCAFE);
        let nodes = Runner::create_hosts(&mut world, tables);
        let sw = world.add_switch("sw0", 4);
        for &n in &nodes {
            world.connect(n, sw, LinkConfig::fast_ethernet());
        }
        let runner = Runner::install(&mut world, tables.clone(), EngineConfig::default());
        runner.settle(&mut world);
        world.add_protocol(
            nodes[1],
            Binding::EtherType(EtherType::IPV4),
            Box::new(UdpSink::new(0x6363)),
        );
        let flooder = UdpFlooder::new(
            world.host_mac(nodes[1]),
            world.host_ip(nodes[1]),
            0x6363,
            9000,
            2_000_000,
            200,
            30 * 200,
        );
        world.add_protocol(
            nodes[0],
            Binding::EtherType(EtherType::IPV4),
            Box::new(flooder),
        );
        (world, runner)
    });

    print!("{}", result.render());
    println!(
        "\n(the red test failing is the suite working: \
         {} of {} green as expected)",
        result.passed_count(),
        result.reports.len()
    );
    Ok(())
}

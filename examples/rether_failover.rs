//! The paper's Section 6.2 experiment: crash a Rether node and verify the
//! token ring detects the failure (exactly 3 token transmissions to the
//! dead successor) and reconstructs itself within the 1-second inactivity
//! window (Figure 6 script, adapted — see `scripts/rether_failover.fsl`
//! and EXPERIMENTS.md).
//!
//! ```text
//! cargo run --example rether_failover [--broken]
//! ```
//!
//! With `--broken`, the Rether build under test retransmits the token six
//! times before giving up — the analysis script flags the violation.

use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_rether::{RetherConfig, RetherNode};
use vw_tcpstack::{Endpoint, TcpConfig, TcpStack};

const SCRIPT: &str = include_str!("../scripts/rether_failover.fsl");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broken = std::env::args().any(|a| a == "--broken");
    let token_send_limit = if broken { 6 } else { 3 };
    println!(
        "=== Section 6.2: Rether single-node-failure recovery ===\n\
         implementation under test: vw-rether (token_send_limit = {token_send_limit}{})\n",
        if broken { ", BROKEN: spec says 3" } else { "" }
    );

    let tables = compile_script(SCRIPT)?;
    let mut world = World::new(1);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let hub = world.add_hub("bus", 5);
    for &n in &nodes {
        world.connect(n, hub, LinkConfig::ethernet_10m());
    }

    // Rether sits closest to the stack; the engines installed next sit
    // between Rether and the driver, exactly as in the paper's testbed.
    let ring: Vec<_> = tables.nodes.iter().map(|n| n.mac).collect();
    let mut rether_hooks = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        let cfg = RetherConfig {
            ring: ring.clone(),
            token_send_limit,
            ..RetherConfig::new(ring.clone())
        };
        let mut rether = RetherNode::new(cfg, ring[i]);
        if i == 0 || i == 3 {
            rether.reserve_rt(32 * 1024);
        }
        rether_hooks.push(world.add_hook(node, Box::new(rether)));
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    // The real-time TCP session between node1 and node4.
    let tcp_cfg = TcpConfig::default();
    let mut server = TcpStack::new(world.host_mac(nodes[3]), world.host_ip(nodes[3]));
    server.listen(0x4000, tcp_cfg);
    world.add_protocol(
        nodes[3],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );
    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let handle = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[3]),
            ip: world.host_ip(nodes[3]),
            port: 0x4000,
        },
    );
    client.attach_source(handle, 2_000_000, 10_000_000);
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    let report = runner.run(&mut world, SimDuration::from_secs(60));
    print!("{}", report.render());

    println!();
    for (i, name) in ["node1", "node2", "node3", "node4"].iter().enumerate() {
        let rether = world.hook::<RetherNode>(nodes[i], rether_hooks[i]).unwrap();
        let engine = runner.engine(&world, name).unwrap();
        println!(
            "{name}: ring_view={} tokens_rx={} token_rexmit={} reconstructions={} {}",
            rether.ring().len(),
            rether.stats().tokens_received,
            rether.stats().token_retransmissions,
            rether.stats().reconstructions,
            if engine.is_blackholed() {
                "[CRASHED by FAIL]"
            } else {
                ""
            }
        );
    }
    println!(
        "\n==> {}",
        if report.passed() {
            "PASS: failure detected after exactly 3 token sends; ring reconstructed"
        } else {
            "FAIL: the analysis script flagged a protocol violation"
        }
    );
    Ok(())
}

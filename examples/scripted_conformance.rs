//! Scripted stimulus + model-driven conformance checking, end to end.
//!
//! ```text
//! cargo run --release --example scripted_conformance
//! ```
//!
//! Part 1 drives a packetdrill-style script against a live testbed: timed
//! injections enter the engine hook chain like any stack traffic, and
//! timed expectations are judged against the packet trace afterwards.
//!
//! Part 2 sweeps a small fault matrix — a mid-flow TCP data-drop window
//! crossed with simulator seeds — and folds every instance's protocol-
//! conformance verdicts (the shipped TCP reference FSM replayed over the
//! sender's state log) into campaign outcome classes keyed on
//! [`DigestKey::conformance`]. The seeded-drop class must carry the
//! fast-retransmit violation; the empty-window control class must be
//! fully conformant.

use virtualwire::{compile_script, EngineConfig, Report, Runner, ScriptError};
use vw_analysis::{conformance_pass, tcp_reference};
use vw_campaign::{
    run_campaign, Axis, CampaignSpec, DigestKey, ExecConfig, InstanceOutcome, RunConfig, Setup,
};
use vw_fsl::TableSet;
use vw_netsim::apps::UdpSink;
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_script::{evaluate, install, Script};
use vw_tcpstack::{Endpoint, TcpConfig, TcpStack};

/// Part 1: a UDP echo bed where the only traffic is script-injected.
const STIMULUS_FSL: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO Scripted_Stimulus 50msec
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    END
"#;

const STIMULUS: &str = r#"
    # three scripted datagrams; the scenario stops after the third send
    @1ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 01
    @2ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 02
    @3ms inject stack node1 udp node1 -> node2 sport 9000 dport 25443 payload-hex 03
    # each reaches node2 within a 500us tolerance window
    @1ms..1500us expect recv node2 udp dport == 25443 payload-contains-hex 01
    @2ms..2500us expect recv node2 udp dport == 25443 payload-contains-hex 02
    @3ms..3500us expect recv node2 udp dport == 25443 payload-contains-hex 03
    # nothing TCP may reach node2, ever
    @0s..1s expect-none recv node2 tcp
    # the scenario counter saw exactly the scripted sends
    @10ms assert-counter Sent == 3
"#;

/// Part 2: the §6.1 sender/receiver pair. The handshake SYNACK drop
/// leaves ssthresh at 2 segments (so the sender crosses into congestion
/// avoidance early); the campaign sweeps the mid-flow data-drop window's
/// upper bound — 21 drops the 20th data segment, 0 empties the window.
const SWEEP_FSL: &str = r#"
    FILTER_TABLE
    TCP_synack: (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)
    TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
    TCP_ack: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.1
    node2 02:00:00:00:00:02 192.168.1.2
    END
    SCENARIO Swept_Data_Drop 2sec
    SYNACK: (TCP_synack, node2, node1, RECV)
    DATA: (TCP_data, node1, node2, SEND)
    ACK: (TCP_ack, node2, node1, RECV)
    (TRUE) >> ENABLE_CNTR( SYNACK ); ENABLE_CNTR( DATA ); ENABLE_CNTR( ACK );
    ((SYNACK > 0) && (SYNACK < 2)) >> DROP TCP_synack, node2, node1, RECV;
    ((DATA > 19) && (DATA < 21)) >> DROP TCP_data, node1, node2, SEND;
    ((ACK = 60)) >> STOP;
    END
"#;

fn scripted_stimulus() {
    let tables = compile_script(STIMULUS_FSL).expect("stimulus FSL compiles");
    let mut world = World::new(7);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );

    let script = Script::parse(STIMULUS).expect("stimulus script parses");
    let scheduled = install(&script, &mut world, runner.tables()).expect("script installs");
    println!("--- scripted stimulus: {scheduled} injections scheduled ---");

    let report = runner.run(&mut world, SimDuration::from_secs(1));
    let verdicts = evaluate(&script, &world, runner.tables(), &report);
    for v in &verdicts {
        println!("  directive {:2}  {}", v.directive(), v);
    }
    assert!(
        verdicts.iter().all(|v| v.passed()),
        "the clean stimulus run must satisfy every expectation"
    );
}

/// Campaign setup: builds the TCP testbed, then replays the TCP
/// reference model over the state logs in `finish` so every instance's
/// digest carries conformance verdicts.
struct ConformanceSetup {
    names: TableSet,
}

impl Setup for ConformanceSetup {
    fn build(&self, tables: &TableSet, run: &RunConfig) -> Result<(World, Runner), ScriptError> {
        let mut world = World::with_impairment(run.seed, run.impairment);
        let nodes = Runner::create_hosts(&mut world, tables);
        let sw = world.add_switch("sw0", 4);
        for &n in &nodes {
            world.connect(n, sw, LinkConfig::fast_ethernet());
        }
        let runner = Runner::try_install(&mut world, tables.clone(), EngineConfig::default())?;
        runner.settle(&mut world);

        let tcp_cfg = TcpConfig::default();
        let mut server = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
        server.listen(0x4000, tcp_cfg);
        world.add_protocol(
            nodes[1],
            Binding::EtherType(EtherType::IPV4),
            Box::new(server),
        );
        let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
        let handle = client.connect(
            tcp_cfg,
            0x6000,
            Endpoint {
                mac: world.host_mac(nodes[1]),
                ip: world.host_ip(nodes[1]),
                port: 0x4000,
            },
        );
        client.send(handle, &vec![0x42u8; 80_000]);
        world.add_protocol(
            nodes[0],
            Binding::EtherType(EtherType::IPV4),
            Box::new(client),
        );
        Ok((world, runner))
    }

    fn finish(&self, world: &mut World, report: &mut Report) {
        conformance_pass(&[tcp_reference()], &self.names, world, report);
    }
}

fn conformance_sweep() {
    let spec = CampaignSpec::new(
        "scripted_conformance",
        vw_fsl::parse(SWEEP_FSL).expect("sweep FSL parses"),
    )
    // Occurrence 1 is the `DATA < 21` upper bound: 21 keeps the seeded
    // drop, 20/0 shrink it away (20 leaves `19 < DATA < 20` empty too).
    .axis(Axis::threshold_at("DATA", 1, vec![21, 20, 0]))
    .axis(Axis::seeds(vec![1, 4, 9]));

    let setup = ConformanceSetup {
        names: compile_script(SWEEP_FSL).expect("sweep FSL compiles"),
    };
    let cfg = ExecConfig {
        key: DigestKey {
            conformance: true,
            ..DigestKey::default()
        },
        ..ExecConfig::threads(4)
    };
    let result = run_campaign(&spec, &setup, &cfg).expect("campaign runs");
    println!(
        "\n--- conformance sweep: {} instances, {} classes ---",
        result.instances.len(),
        result.classes.len()
    );

    let mut conformant_classes = 0usize;
    let mut fast_retransmit_classes = 0usize;
    for class in &result.classes {
        let InstanceOutcome::Completed(digest) = &class.outcome else {
            panic!("unexpected outcome in class: {:?}", class.outcome);
        };
        println!("class {:016x}  members {:?}", class.digest, class.members);
        for (model, node, verdict) in &digest.conformance {
            println!("    {model}/{node}: {verdict}");
        }
        if digest.conformant() {
            conformant_classes += 1;
        }
        if digest
            .conformance
            .iter()
            .any(|(_, _, v)| v.contains("fast-retransmit"))
        {
            fast_retransmit_classes += 1;
        }
    }
    assert!(
        conformant_classes > 0,
        "the empty-window control runs must form a fully conformant class"
    );
    assert!(
        fast_retransmit_classes > 0,
        "the seeded-drop runs must form a fast-retransmit violation class"
    );
}

fn main() {
    scripted_stimulus();
    conformance_sweep();
    println!("\nscripted_conformance OK");
}

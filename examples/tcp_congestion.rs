//! The paper's Section 6.1 experiment: test the switch from slow start to
//! congestion avoidance in a TCP implementation, by dropping one SYNACK
//! during connection establishment (Figure 5 script, adapted — see
//! `scripts/tcp_ss_ca.fsl` and EXPERIMENTS.md).
//!
//! ```text
//! cargo run --example tcp_congestion [--buggy]
//! ```
//!
//! With `--buggy`, the TCP stack under test ignores `ssthresh` and never
//! enters congestion avoidance; the analysis script catches it.

use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_tcpstack::{Endpoint, TcpConfig, TcpStack};

const SCRIPT: &str = include_str!("../scripts/tcp_ss_ca.fsl");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buggy = std::env::args().any(|a| a == "--buggy");
    println!(
        "=== Section 6.1: TCP slow-start → congestion-avoidance transition ===\n\
         implementation under test: vw-tcpstack{}\n",
        if buggy {
            " (DELIBERATELY BROKEN: never leaves slow start)"
        } else {
            ""
        }
    );

    let tables = compile_script(SCRIPT)?;
    let mut world = World::new(1);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    let tcp_cfg = TcpConfig {
        bug_never_enter_ca: buggy,
        ..TcpConfig::default()
    };
    let mut server = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
    server.listen(0x4000, tcp_cfg);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );

    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let handle = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[1]),
            ip: world.host_ip(nodes[1]),
            port: 0x4000,
        },
    );
    client.send(handle, &vec![0x42u8; 80_000]);
    let client_id = world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    let report = runner.run(&mut world, SimDuration::from_secs(10));
    print!("{}", report.render());

    let engine = runner.engine(&world, "node1").unwrap();
    println!("\nfaults injected: {} SYNACK drop(s)", engine.stats().drops);

    let client = world.protocol::<TcpStack>(nodes[0], client_id).unwrap();
    let socket = client.socket(handle);
    println!(
        "implementation internals (never consulted by the script): \
         cwnd={} ssthresh={} phase={:?} timeouts={}",
        socket.cwnd(),
        socket.ssthresh(),
        socket.cc_phase(),
        socket.stats().timeouts
    );
    println!(
        "\n==> {}",
        if report.passed() {
            "PASS: the implementation switched to congestion avoidance as specified"
        } else {
            "FAIL: the analysis script flagged non-conformant window behaviour"
        }
    );
    Ok(())
}

//! The "before VirtualWire" workflow, automated: capture a packet trace of
//! a faulted run and inspect it — then contrast with the online analysis
//! the engines already did.
//!
//! The paper's introduction complains that testing Rether meant "collecting
//! tcpdump traces and inspecting them manually or through some simple
//! testcase specific filter programs". The simulator records an equivalent
//! trace for free; this example dumps it tcpdump-style next to the
//! engine-generated report, so you can see both what the FAE concluded and
//! the raw evidence it concluded it from.
//!
//! ```text
//! cargo run --example trace_dump
//! ```

use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, TraceKind, World};
use vw_packet::EtherType;

const SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO Inspect
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 2)) >> DROP(udp_data, node1, node2, SEND);
    ((Sent = 4)) >> DUP(udp_data, node1, node2, SEND);
    ((Sent = 6)) >> STOP;
    END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tables = compile_script(SCRIPT)?;
    let mut world = World::new(3);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);
    world.trace_mut().clear(); // drop the init chatter, keep the run

    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000,
        120,
        20 * 120,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(1));

    println!("=== packet trace (UDP data + fault events only) ===");
    for record in world.trace().records() {
        let is_udp = record
            .frame
            .as_ref()
            .is_some_and(|f| f.udp().is_some_and(|u| u.dst_port() == 0x6363));
        let is_fault = matches!(record.kind, TraceKind::HookConsume | TraceKind::Note);
        if is_udp || is_fault {
            println!("{}", record.render());
        }
    }

    println!("\n=== and a hexdump of the first captured datagram ===");
    if let Some(frame) = world
        .trace()
        .records()
        .iter()
        .find_map(|r| r.frame.as_ref().filter(|f| f.udp().is_some()))
    {
        print!("{}", frame.hexdump());
    }

    println!("\n=== what the FAE already knew without any of that ===");
    print!("{}", report.render());
    Ok(())
}

//! The "before VirtualWire" workflow, automated: capture a packet trace of
//! a faulted run, export it as a standard pcap, and inspect it — then
//! contrast with the online analysis the engines already did.
//!
//! The paper's introduction complains that testing Rether meant "collecting
//! tcpdump traces and inspecting them manually or through some simple
//! testcase specific filter programs". The simulator records an equivalent
//! trace for free; this example routes it through the `vw-obs` pcap
//! exporter (the bytes open in Wireshark/tcpdump), parses the capture back
//! to prove it round-trips, and dumps the filtered records tcpdump-style
//! next to the engine-generated report — both what the FAE concluded and
//! the raw evidence it concluded it from.
//!
//! ```text
//! cargo run --example trace_dump
//! ```

use virtualwire::{compile_script, pcap, EngineConfig, Runner};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, TraceKind, World};
use vw_packet::EtherType;

const SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO Inspect
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 2)) >> DROP(udp_data, node1, node2, SEND);
    ((Sent = 4)) >> DUP(udp_data, node1, node2, SEND);
    ((Sent = 6)) >> STOP;
    END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tables = compile_script(SCRIPT)?;
    let mut world = World::new(3);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);
    world.trace_mut().clear(); // drop the init chatter, keep the run

    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000,
        120,
        20 * 120,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(1));

    // The tcpdump replacement: one pcap export, readable by any standard
    // tool, round-tripped through the parser to show nothing was lost.
    let capture = pcap::export_trace(world.trace());
    let packets = pcap::parse(&capture)?;
    println!(
        "=== pcap export: {} bytes, {} packets (nanosecond libpcap, LINKTYPE_ETHERNET) ===",
        capture.len(),
        packets.len()
    );
    let out = std::env::temp_dir().join("virtualwire_trace_dump.pcap");
    std::fs::write(&out, &capture)?;
    println!("wrote {} — open it in Wireshark or tcpdump", out.display());

    println!("\n=== packet trace (UDP data + fault events only) ===");
    for record in world.trace().records() {
        let is_udp = record
            .frame
            .as_ref()
            .is_some_and(|f| f.udp().is_some_and(|u| u.dst_port() == 0x6363));
        let is_fault = matches!(record.kind, TraceKind::HookConsume | TraceKind::Note);
        if is_udp || is_fault {
            // render_record resolves device ids to topology names
            // (node1/node2/sw0) via the sink's registry.
            println!("{}", world.trace().render_record(record));
        }
    }

    println!("\n=== and a hexdump of the first parsed pcap packet ===");
    if let Some(packet) = packets.iter().find(|p| p.bytes.len() > 42) {
        for (i, chunk) in packet.bytes.chunks(16).enumerate() {
            print!("{:04x}  ", i * 16);
            for b in chunk {
                print!("{b:02x} ");
            }
            println!();
        }
    }

    println!("\n=== what the FAE already knew without any of that ===");
    print!("{}", report.render());
    Ok(())
}

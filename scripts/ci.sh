#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required —
# all third-party dependencies are vendored under vendor/ as path deps.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace --no-fail-fast

echo "==> cargo clippy"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"

#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required —
# all third-party dependencies are vendored under vendor/ as path deps.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace --no-fail-fast

# Feature matrix: the obs feature only constant-folds the flight recorder's
# recording paths — the API must build and test identically without it.
echo "==> cargo test (no default features)"
cargo test -q -p virtualwire --no-default-features

# Control-plane fault matrix: every distributed scenario must converge to
# the fault-free report under {drop,dup,reorder,delay} x {0..30%} on the
# 0x88B5 control frames, with staleness flagged loudly, never silently.
echo "==> control-matrix"
cargo test -q -p virtualwire --test control_plane_reliability

echo "==> example smoke: obs_flight_recorder"
cargo run -q --release --example obs_flight_recorder > /dev/null

echo "==> example smoke: trace_dump (pcap export round-trip)"
cargo run -q --release --example trace_dump > /dev/null

# Fault analysis engine: cross-node timeline merge, invariant checking
# (zero violations on clean runs, seeded orphan detected), and campaign
# analytics determinism + regression diff.
echo "==> analysis"
cargo test -q -p vw-analysis
cargo test -q --test analysis_suite
cargo run -q --release --example fault_analysis > /dev/null

# Campaign engine: a small sweep must dedup into multiple outcome classes
# and the shrinker must halve a failing instance's rule count; the
# determinism suite pins byte-identical JSONL across thread counts. The
# example then runs the full 216-instance sweep end to end.
echo "==> campaign-smoke"
cargo test -q -p vw-campaign --test campaign_smoke --test determinism
cargo run -q --release --example campaign_sweep > /dev/null

# Scripted stimulus + protocol conformance: the vw-script parser and
# runtime suites (round-trip and robustness property tests included),
# the reference-model scenarios on the paper's §6.1/§6.2 testbeds (clean
# runs conform; seeded faults produce their documented violation class),
# the thread-count determinism of conformance-keyed campaign digests,
# and the end-to-end scripted stimulus + sweep example.
echo "==> script-smoke"
cargo test -q -p vw-script
cargo test -q --test conformance_models
cargo test -q -p vw-analysis --test conformance_determinism
cargo run -q --release --example scripted_conformance > /dev/null

# Trace smoke: the span profiler must collect a real run, export Chrome
# trace JSON that round-trips the vendored parser (the example
# self-checks both, plus the 5% self-time coverage bound), and the whole
# feature matrix must build: tracing compiled out (ZST guards), obs off,
# and both on.
echo "==> trace-smoke"
cargo test -q -p vw-trace
cargo test -q -p vw-trace --no-default-features
cargo run -q --release --example profile_run > /dev/null
cargo build -q -p virtualwire --no-default-features --features obs
cargo build -q -p virtualwire --no-default-features --features trace

# Bench smoke: the perf-trajectory harness must run end to end in quick
# mode, emit schema-valid JSON, and observe zero frame-conservation
# diagnostics (no injected fault may lose or garble frames) in the
# example scenarios it drives.
echo "==> bench-smoke"
cargo build -q --release -p vw-bench --bin bench_snapshot
./target/release/bench_snapshot --quick --enforce-conservation \
    --label ci-smoke --out target/bench_smoke.json > /dev/null
./target/release/bench_snapshot --check target/bench_smoke.json

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"

//! Umbrella crate for the VirtualWire reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests
//! (`tests/`) — the paper's Section 6 case studies among them — and the
//! runnable examples (`examples/`). The library surface lives in the
//! workspace members:
//!
//! * [`virtualwire`] — the fault injection/analysis engines and runner,
//! * [`vw_fsl`] — the Fault Specification Language,
//! * [`vw_netsim`] — the deterministic LAN simulator,
//! * [`vw_packet`], [`vw_rll`], [`vw_tcpstack`], [`vw_rether`] — the
//!   substrates and protocols under test.
//!
//! Start with `README.md`, then `cargo run --example quickstart`.

pub use virtualwire;
pub use vw_fsl;
pub use vw_netsim;
pub use vw_packet;
pub use vw_rether;
pub use vw_rll;
pub use vw_tcpstack;

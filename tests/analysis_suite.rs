//! Fault analysis engine integration tests: the merged distributed
//! timeline against real multi-node runs, the invariant checker on clean
//! and doctored records, and campaign-wide analytics end to end.

use std::sync::OnceLock;

use proptest::prelude::*;
use virtualwire::{
    compile_script, EngineConfig, ObsActionKind, ObsEvent, ObsLevel, Report, Runner,
};
use vw_analysis::{CampaignAnalyzer, DistributedTimeline, InvariantChecker};
use vw_campaign::{run_campaign, Axis, CampaignSpec, ExecConfig, RunConfig};
use vw_fsl::{NodeId, TableSet};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

/// The Figure 6 pattern: the `Rcvd` counter is homed on node2 while the
/// action it triggers executes on node3, so the trigger must cross the
/// control plane — giving the merge a real happens-before edge.
const REMOTE_FAIL: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    node3 02:00:00:00:00:03 192.168.1.4
    END
    SCENARIO RemoteFail
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 3)) >> FAIL(node3);
    ((Rcvd = 8)) >> STOP;
    END
"#;

/// The PR-2 documented scenario whose causal chain is pinned below.
const DROP_AFTER_THREE: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO DropAfterThree
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 3)) >> DROP(udp_data, node1, node2, SEND); FLAG_ERR "third packet dropped";
    ((Sent = 6)) >> STOP;
    END
"#;

/// Runs `script` with a full flight recorder on every engine and a UDP
/// flood from its first to its second node.
fn run_full(script: &str, seed: u64, datagrams: u64) -> (Report, TableSet) {
    let tables = compile_script(script).expect("script compiles");
    let mut world = World::new(seed);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 8);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(
        &mut world,
        tables.clone(),
        EngineConfig {
            obs: ObsLevel::Full,
            ..EngineConfig::default()
        },
    );
    assert!(runner.settle(&mut world), "control plane must settle");
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        1_000_000,
        200,
        datagrams * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(1));
    (report, tables)
}

/// Position of the first entry matching `pred`, or a panic naming `what`.
fn position(
    timeline: &DistributedTimeline,
    what: &str,
    pred: impl Fn(NodeId, &ObsEvent) -> bool,
) -> usize {
    timeline
        .entries()
        .iter()
        .position(|e| pred(e.node, &e.event))
        .unwrap_or_else(|| panic!("no {what} in timeline"))
}

#[test]
fn merged_timeline_orders_the_cross_node_cascade() {
    let (report, tables) = run_full(REMOTE_FAIL, 2, 10);
    assert!(report.passed(), "report: {report}");
    let timeline = DistributedTimeline::from_report(&report);
    let node2 = tables.node_by_name("node2").unwrap();
    let node3 = tables.node_by_name("node3").unwrap();

    // The documented cross-node chain, in merge order: node2's counter
    // hits 3 and flips the term, node2 sends the TERM_STATUS, node3
    // receives it, flips its copy, fires the condition, and FAILs.
    let flip2 = position(&timeline, "node2 term flip", |n, e| {
        n == node2 && matches!(e, ObsEvent::TermFlipped { status: true, .. })
    });
    let sent = position(&timeline, "node2 control send", |n, e| {
        n == node2 && matches!(e, ObsEvent::ControlSent { peer, .. } if *peer == node3)
    });
    let delivered = position(&timeline, "node3 delivery", |n, e| {
        n == node3 && matches!(e, ObsEvent::ControlDelivered { peer, .. } if *peer == node2)
    });
    let flip3 = position(&timeline, "node3 term flip", |n, e| {
        n == node3 && matches!(e, ObsEvent::TermFlipped { status: true, .. })
    });
    let fired = position(&timeline, "node3 condition", |n, e| {
        n == node3 && matches!(e, ObsEvent::ConditionFired { .. })
    });
    let failed = position(&timeline, "node3 FAIL", |n, e| {
        n == node3
            && matches!(
                e,
                ObsEvent::ActionTriggered {
                    kind: ObsActionKind::Fail,
                    ..
                }
            )
    });
    assert!(
        flip2 < sent && sent < delivered && delivered < flip3 && flip3 < fired && fired < failed,
        "cross-node order broken: flip2={flip2} sent={sent} delivered={delivered} \
         flip3={flip3} fired={fired} failed={failed}\n{}",
        timeline.render(&report.symbols)
    );
}

#[test]
fn golden_chain_reproduced_from_the_merged_timeline() {
    let (report, _tables) = run_full(DROP_AFTER_THREE, 7, 20);
    assert_eq!(report.errors.len(), 1, "report: {report}");
    let error = &report.errors[0];
    let engine_chain = report.explain(error).expect("Full-level run explains");

    // The same chain, reconstructed from the *merged* timeline rather
    // than the per-engine log: identical events, identical labels.
    let timeline = DistributedTimeline::from_report(&report);
    let merged_chain = timeline.chain(engine_chain.node, engine_chain.frame_seq);
    assert_eq!(
        merged_chain.kind_labels(),
        vec![
            "classified",
            "counter",
            "term",
            "condition",
            "action",
            "action"
        ],
        "chain: {}",
        merged_chain.render(&report.symbols)
    );
    assert_eq!(merged_chain.events, engine_chain.events);
    let kinds: Vec<ObsActionKind> = merged_chain
        .events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::ActionTriggered { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![ObsActionKind::FlagErr, ObsActionKind::Drop]);
}

#[test]
fn builtin_invariants_hold_on_recorded_scenarios() {
    let checker = InvariantChecker::with_builtins();
    for (script, seed, datagrams) in [(REMOTE_FAIL, 2, 10), (DROP_AFTER_THREE, 7, 20)] {
        let (report, tables) = run_full(script, seed, datagrams);
        let violations = checker.check_report(&report, &tables);
        assert!(
            violations.is_empty(),
            "clean {} run violated: {:?}",
            report.scenario,
            violations
        );
    }
}

#[test]
fn erasing_deliveries_orphans_the_remote_flip() {
    let (report, tables) = run_full(REMOTE_FAIL, 2, 10);
    // Doctor the record: drop every control-plane delivery, leaving
    // node3's remote TermFlipped without the message that justified it.
    let doctored: Vec<ObsEvent> = report
        .events
        .iter()
        .filter(|e| !matches!(e, ObsEvent::ControlDelivered { .. }))
        .cloned()
        .collect();
    let timeline = DistributedTimeline::from_events(&doctored);
    let violations = InvariantChecker::with_builtins().check(&timeline, &tables);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "remote-term-delivery"),
        "expected an orphaned remote flip, got: {violations:?}"
    );
    // The violation carries the causal slice the analyst needs.
    let v = violations
        .iter()
        .find(|v| v.invariant == "remote-term-delivery")
        .unwrap();
    assert!(
        v.slice
            .iter()
            .any(|e| matches!(e, ObsEvent::TermFlipped { .. })),
        "slice must contain the orphan flip: {v:?}"
    );
}

/// Events of a REMOTE_FAIL run, computed once and shared by the proptest
/// cases below (the run itself is deterministic).
fn recorded_events() -> &'static [ObsEvent] {
    static EVENTS: OnceLock<Vec<ObsEvent>> = OnceLock::new();
    EVENTS.get_or_init(|| run_full(REMOTE_FAIL, 2, 10).0.events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The merge is a pure function of the event *set*: any permutation
    /// of the recorded stream yields the identical timeline.
    #[test]
    fn merge_is_deterministic_under_permutation(
        from in proptest::collection::vec(any::<usize>(), 1..64),
        to in proptest::collection::vec(any::<usize>(), 1..64),
    ) {
        let events = recorded_events();
        let reference = DistributedTimeline::from_events(events);
        let mut shuffled = events.to_vec();
        let len = shuffled.len();
        for (&a, &b) in from.iter().zip(&to) {
            shuffled.swap(a % len, b % len);
        }
        let merged = DistributedTimeline::from_events(&shuffled);
        let reference_events: Vec<&ObsEvent> = reference.events().collect();
        let merged_events: Vec<&ObsEvent> = merged.events().collect();
        prop_assert_eq!(reference_events, merged_events);
    }

    /// Whatever the input order, each node's events appear in its local
    /// causal order: frame_seq never decreases within a node.
    #[test]
    fn merge_respects_local_frame_order(
        from in proptest::collection::vec(any::<usize>(), 1..64),
        to in proptest::collection::vec(any::<usize>(), 1..64),
    ) {
        let events = recorded_events();
        let mut shuffled = events.to_vec();
        let len = shuffled.len();
        for (&a, &b) in from.iter().zip(&to) {
            shuffled.swap(a % len, b % len);
        }
        let merged = DistributedTimeline::from_events(&shuffled);
        for &node in merged.nodes() {
            let seqs: Vec<u64> = merged
                .entries()
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.event.frame_seq())
                .collect();
            prop_assert!(
                seqs.windows(2).all(|w| w[0] <= w[1]),
                "node {:?} local order broken: {:?}",
                node,
                seqs
            );
        }
    }
}

// ----------------------------------------------------------------------
// Campaign analytics
// ----------------------------------------------------------------------

const SWEEP_SCRIPT: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END
    SCENARIO Sweep 500msec
    Sent: (udp_data, node1, node2, SEND)
    (TRUE) >> ENABLE_CNTR(Sent);
    ((Sent = 5)) >> DROP(udp_data, node1, node2, SEND);
    ((Sent = 30)) >> STOP;
    END
"#;

fn sweep_setup(
    tables: &TableSet,
    run: &RunConfig,
) -> Result<(World, Runner), virtualwire::ScriptError> {
    let mut world = World::with_impairment(run.seed, run.impairment);
    let nodes = Runner::create_hosts(&mut world, tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::try_install(
        &mut world,
        tables.clone(),
        EngineConfig {
            obs: ObsLevel::Faults,
            ..EngineConfig::default()
        },
    )?;
    runner.settle(&mut world);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        2_000_000,
        200,
        30 * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    Ok((world, runner))
}

#[test]
fn analyzer_aggregate_is_schedule_independent_and_diff_flags_regressions() {
    let spec = CampaignSpec::new("analysis", vw_fsl::parse(SWEEP_SCRIPT).unwrap())
        .axis(Axis::threshold_at("Sent", 0, vec![5, 40]))
        .axis(Axis::seeds(vec![1, 2]));
    assert_eq!(spec.total(), 4);

    let solo = run_campaign(&spec, &sweep_setup, &ExecConfig::threads(1)).unwrap();
    let report = CampaignAnalyzer::new().push_result(&solo).analyze();
    let pooled = run_campaign(&spec, &sweep_setup, &ExecConfig::threads(4)).unwrap();
    let pooled_report = CampaignAnalyzer::new().push_result(&pooled).analyze();
    assert_eq!(
        report.to_jsonl(),
        pooled_report.to_jsonl(),
        "aggregate must not depend on worker scheduling"
    );

    // Exactly the instances whose threshold is reachable inject a drop.
    assert_eq!(report.instances, 4);
    assert_eq!(report.counter("drops"), Some(2));
    let breakdown = report
        .breakdown("threshold.Sent#0")
        .expect("axis breakdown");
    assert_eq!(breakdown.groups.len(), 2);

    // A doubled fault count against the healthy baseline trips the gate;
    // an identical report does not.
    assert!(report.diff(&report, 0.10).is_empty());
    let mut degraded = report.clone();
    for (name, v) in &mut degraded.counters {
        if name == "drops" {
            *v *= 2;
        }
    }
    let regressions = degraded.diff(&report, 0.10);
    assert!(
        regressions.iter().any(|r| r.metric == "drops"),
        "doubled drops must be flagged: {regressions:?}"
    );
}

//! Model-driven protocol conformance checking on the paper's §6.1/§6.2
//! testbeds: the shipped `tcp_reference` / `rether_reference` FSMs are
//! replayed against real runs. Clean runs conform; seeded faults and
//! implementation bugs each produce a documented, deterministic
//! violation class.

use virtualwire::{compile_script, ConformanceRecord, EngineConfig, Report, Runner};
use vw_analysis::{conformance_pass, rether_reference, tcp_reference};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_rether::{RetherConfig, RetherNode};
use vw_tcpstack::{Endpoint, TcpConfig, TcpStack};

const TCP_SCRIPT: &str = include_str!("../scripts/tcp_ss_ca.fsl");
const RETHER_SCRIPT: &str = include_str!("../scripts/rether_failover.fsl");

/// §6.1 variant that drops one mid-flow data segment instead of a
/// SYNACK: a clean handshake, then a seeded loss at the 20th data
/// segment, forcing the sender through fast-retransmit / fast-recovery.
const TCP_DATA_DROP_SCRIPT: &str = r#"
    FILTER_TABLE
    TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
    TCP_ack: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.1
    node2 02:00:00:00:00:02 192.168.1.2
    END
    SCENARIO Seeded_Data_Drop 2sec
    DATA: (TCP_data, node1, node2, SEND)
    ACK: (TCP_ack, node2, node1, RECV)
    (TRUE) >> ENABLE_CNTR( DATA ); ENABLE_CNTR( ACK );
    ((DATA > 19) && (DATA < 21)) >> DROP TCP_data, node1, node2, SEND;
    ((ACK = 60)) >> STOP;
    END
"#;

/// §6.2 variant that kills the token *holder* (after its ack reached the
/// predecessor) instead of the successor: the token dies with node3, the
/// ring falls silent, and the lowest-ranked survivor must regenerate —
/// which the fault-free reference model forbids.
const RETHER_HOLDER_KILL_SCRIPT: &str = r#"
    FILTER_TABLE
    tr_token: (12 2 0x9900), (14 2 0x0001)
    tr_token_ack: (12 2 0x9900), (14 2 0x0010)
    TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.1
    node2 02:00:00:00:00:02 192.168.1.2
    node3 02:00:00:00:00:03 192.168.1.3
    node4 02:00:00:00:00:04 192.168.1.4
    END
    SCENARIO Seeded_Holder_Kill 3sec
    CNT_DATA: (TCP_data, node1, node4, RECV)
    AckFrom3: (tr_token_ack, node3, node2, RECV)
    TokensTo2: (tr_token, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR( CNT_DATA );
    ((CNT_DATA > 100)) >> ENABLE_CNTR( AckFrom3 );
    ((AckFrom3 = 1)) >> FAIL(node3); ENABLE_CNTR( TokensTo2 ); RESET_CNTR( AckFrom3 );
    ((TokensTo2 = 1)) >> STOP;
    END
"#;

/// Builds the §6.1 two-node TCP testbed (sender on node1, receiver on
/// node2) over `script`, runs it, and returns the report with the TCP
/// reference model's conformance records attached.
fn tcp_conformance(seed: u64, script: &str, buggy: bool) -> Report {
    let tables = compile_script(script).unwrap_or_else(|e| panic!("{e}"));
    let mut world = World::new(seed);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    let tcp_cfg = TcpConfig {
        bug_never_enter_ca: buggy,
        ..TcpConfig::default()
    };
    let mut server = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
    server.listen(0x4000, tcp_cfg);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );
    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let handle = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[1]),
            ip: world.host_ip(nodes[1]),
            port: 0x4000,
        },
    );
    client.send(handle, &vec![0x42u8; 80_000]);
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    let mut report = runner.run(&mut world, SimDuration::from_secs(10));
    conformance_pass(&[tcp_reference()], runner.tables(), &world, &mut report);
    report
}

/// Builds the §6.2 four-node Rether ring over `script`, runs it, and
/// returns the conformance records for the Rether reference model.
fn rether_conformance(seed: u64, script: &str) -> Vec<ConformanceRecord> {
    let tables = compile_script(script).unwrap_or_else(|e| panic!("{e}"));
    let mut world = World::new(seed);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let hub = world.add_hub("bus", 5);
    for &n in &nodes {
        world.connect(n, hub, LinkConfig::ethernet_10m());
    }
    let ring: Vec<_> = tables.nodes.iter().map(|n| n.mac).collect();
    for (i, &node) in nodes.iter().enumerate() {
        let cfg = RetherConfig {
            ring: ring.clone(),
            token_send_limit: 3,
            ..RetherConfig::new(ring.clone())
        };
        let mut rether = RetherNode::new(cfg, ring[i]);
        if i == 0 || i == 3 {
            rether.reserve_rt(32 * 1024);
        }
        world.add_hook(node, Box::new(rether));
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    let tcp_cfg = TcpConfig::default();
    let mut server = TcpStack::new(world.host_mac(nodes[3]), world.host_ip(nodes[3]));
    server.listen(0x4000, tcp_cfg);
    world.add_protocol(
        nodes[3],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );
    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let handle = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[3]),
            ip: world.host_ip(nodes[3]),
            port: 0x4000,
        },
    );
    client.attach_source(handle, 2_000_000, 10_000_000);
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    let mut report = runner.run(&mut world, SimDuration::from_secs(60));
    conformance_pass(&[rether_reference()], runner.tables(), &world, &mut report);
    report.conformance
}

fn violations_of<'a>(records: &'a [ConformanceRecord], node: &str) -> &'a [String] {
    records
        .iter()
        .find(|r| r.node == node)
        .map(|r| r.violations.as_slice())
        .unwrap_or_else(|| panic!("no record for {node}: {records:?}"))
}

#[test]
fn clean_tcp_run_conforms_to_the_reference_model() {
    let records = tcp_conformance(1, TCP_SCRIPT, false).conformance;
    assert!(!records.is_empty(), "the sender must produce a record");
    for r in &records {
        assert!(r.passed, "clean §6.1 run must conform: {r}");
    }
    // The sender drove the machine into congestion avoidance.
    assert!(records.iter().any(|r| r.node == "node1"));
}

#[test]
fn seeded_data_drop_produces_the_fast_retransmit_class() {
    let records = tcp_conformance(4, TCP_DATA_DROP_SCRIPT, false).conformance;
    let v = violations_of(&records, "node1");
    assert!(
        v.contains(&"forbidden event fast-retransmit".to_string()),
        "seeded loss must surface the fast-retransmit class: {records:?}"
    );
    assert!(
        v.contains(&"illegal transition congestion-avoidance -> fast-recovery".to_string())
            || v.contains(&"illegal transition slow-start -> fast-recovery".to_string()),
        "the recovery entry is off the fault-free graph: {records:?}"
    );
}

/// A run the scenario stops while the sender is still inside slow start
/// never emits the mandated phase transition: the `drive`-marked cwnd
/// growth binds the sender to the required state, producing the
/// `required state ... never reached` class.
#[test]
fn truncated_run_violates_the_required_state() {
    let script = TCP_SCRIPT.replace("((ACK_TOTAL = 60)) >> STOP;", "((ACK_TOTAL = 1)) >> STOP;");
    let records = tcp_conformance(2, &script, false).conformance;
    let v = violations_of(&records, "node1");
    assert!(
        v.contains(&"required state congestion-avoidance never reached".to_string()),
        "a sender stopped in slow start must trip the required state: {records:?}"
    );
}

/// `bug_never_enter_ca` keeps exponential growth past ssthresh while
/// *reporting* congestion avoidance — the phase FSM sees a legal
/// trajectory and passes. The FSL window-conservation ledger, fed purely
/// by on-the-wire events, is the checker that catches it. Pinning both
/// halves documents that the two checkers cover complementary classes.
#[test]
fn masked_phase_bug_passes_the_model_but_trips_the_window_ledger() {
    let report = tcp_conformance(2, TCP_SCRIPT, true);
    for r in &report.conformance {
        assert!(
            r.passed,
            "the reported phase trajectory is legal, so the model passes: {r}"
        );
    }
    assert!(
        !report.passed(),
        "the CanTx ledger must still flag the masked bug:\n{}",
        report.render()
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.message.contains("beyond its congestion window")),
        "wrong rule fired: {:?}",
        report.errors
    );
}

#[test]
fn clean_rether_failover_conforms_to_the_reference_model() {
    let records = rether_conformance(1, RETHER_SCRIPT);
    assert!(
        records.len() >= 3,
        "every surviving ring member produces a record: {records:?}"
    );
    for r in &records {
        assert!(
            r.passed,
            "§6.2 recovery (reconstruction + retransmissions) is legal: {r}"
        );
    }
}

#[test]
fn holder_kill_produces_the_token_regeneration_class() {
    let records = rether_conformance(5, RETHER_HOLDER_KILL_SCRIPT);
    assert!(
        records.iter().any(|r| r
            .violations
            .contains(&"forbidden event token-regenerated".to_string())),
        "killing the holder must force a forbidden regeneration: {records:?}"
    );
}

#[test]
fn conformance_records_are_deterministic() {
    let a = tcp_conformance(7, TCP_SCRIPT, false).conformance;
    let b = tcp_conformance(7, TCP_SCRIPT, false).conformance;
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "same seed, same records"
    );
}

//! The whole tower at once: a TCP session riding Rether's token ring, with
//! VirtualWire engines between Rether and the wire and the Reliable Link
//! Layer at the bottom, over a *lossy* shared medium — plus multi-switch
//! topologies. If the layering contracts are wrong anywhere, this is where
//! it shows.

use virtualwire::{compile_script, EngineConfig, Runner, StopReason};
use vw_netsim::{Binding, ErrorModel, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_rether::{RetherConfig, RetherNode};
use vw_rll::RllConfig;
use vw_tcpstack::{Endpoint, SocketHandle, TcpConfig, TcpStack};

#[test]
fn tcp_over_rether_over_engines_over_rll_on_a_lossy_bus() {
    // Stack per node: TCP → Rether → VirtualWire engine → RLL → wire.
    // The wire loses 5% of frames; the RLL must mask that entirely, so
    // Rether sees a perfect medium and never reconstructs, and TCP never
    // retransmits (its segments ride reliable token slots).
    let script = r#"
        FILTER_TABLE
        tr_token: (12 2 0x9900), (14 2 0x0001)
        TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
        END
        NODE_TABLE
        node1 02:00:00:00:00:01 192.168.1.1
        node2 02:00:00:00:00:02 192.168.1.2
        node3 02:00:00:00:00:03 192.168.1.3
        END
        SCENARIO FullTower 2sec
        Data: (TCP_data, node1, node3, RECV)
        (TRUE) >> ENABLE_CNTR(Data);
        ((Data = 60)) >> STOP;
        END
    "#;
    let tables = compile_script(script).unwrap();
    let mut world = World::new(99);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let hub = world.add_hub("bus", 4);
    for &n in &nodes {
        world.connect(
            n,
            hub,
            LinkConfig::ethernet_10m().errors(ErrorModel::lossy(0.05)),
        );
    }
    let ring: Vec<_> = tables.nodes.iter().map(|n| n.mac).collect();
    let mut rether_hooks = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        // The token is passed after the hold's data burst, which at
        // 10 Mb/s can take tens of milliseconds to serialize — the ack
        // timeout must cover it (hold budget ≈ 24 KB ⇒ ~20 ms on the
        // wire), or the ring declares healthy successors dead.
        let cfg = RetherConfig {
            token_ack_timeout: SimDuration::from_millis(60),
            regen_base: SimDuration::from_millis(800),
            nrt_quantum_bytes: 8 * 1024,
            ..RetherConfig::new(ring.clone())
        };
        let mut rether = RetherNode::new(cfg, ring[i]);
        rether.reserve_rt(16 * 1024);
        rether_hooks.push(world.add_hook(node, Box::new(rether)));
    }
    let runner = Runner::install_with_rll(
        &mut world,
        tables,
        EngineConfig::default(),
        RllConfig {
            max_retries: 200,
            ..RllConfig::default()
        },
    );
    runner.settle(&mut world);

    let tcp_cfg = TcpConfig::default();
    let mut server = TcpStack::new(world.host_mac(nodes[2]), world.host_ip(nodes[2]));
    server.listen(0x4000, tcp_cfg);
    let sid = world.add_protocol(
        nodes[2],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );
    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let h = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[2]),
            ip: world.host_ip(nodes[2]),
            port: 0x4000,
        },
    );
    client.send(h, &vec![0xABu8; 60_000]);
    let cid = world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    let report = runner.run(&mut world, SimDuration::from_secs(60));
    assert!(
        matches!(report.stop, StopReason::StopAction(_)),
        "60 TCP segments must arrive: {report:?}"
    );
    assert!(report.passed(), "{}", report.render());

    // The RLL masked the 5% loss completely: no node ever declared a
    // healthy peer dead. (A handful of token retransmissions are benign
    // shared-bus queueing effects — a token waiting behind a data burst —
    // not loss leaking through the RLL.)
    let mut token_rexmit_total = 0;
    for (i, &node) in nodes.iter().enumerate() {
        let rether = world.hook::<RetherNode>(node, rether_hooks[i]).unwrap();
        assert_eq!(
            rether.stats().reconstructions,
            0,
            "node{}: the ring must never think a peer died",
            i + 1
        );
        assert_eq!(rether.ring().len(), 3, "node{}", i + 1);
        token_rexmit_total += rether.stats().token_retransmissions;
    }
    assert!(
        token_rexmit_total <= 10,
        "occasional queueing-induced retransmissions only, got {token_rexmit_total}"
    );
    // TCP's own recovery stays essentially idle (the RLL absorbs the
    // loss; at most a stray RTO from ring-queueing latency spikes).
    let client = world.protocol::<TcpStack>(nodes[0], cid).unwrap();
    let retransmissions = client.socket(h).stats().retransmissions;
    assert!(
        retransmissions <= 2,
        "got {retransmissions} retransmissions"
    );
    // STOP fires inside node3's engine while the 60th segment is still on
    // its way up the hook chain, so the stack itself holds 59 or 60
    // segments when the world freezes — minus one per retransmission,
    // because the engine's Data counter sees every matching frame and a
    // retransmitted segment therefore counts twice toward the STOP.
    let server = world.protocol_mut::<TcpStack>(nodes[2], sid).unwrap();
    let received = server
        .socket_mut(SocketHandle::from_index(0))
        .take_received()
        .len();
    let floor = 59_000 - 1_000 * retransmissions as usize;
    assert!(
        (floor..=60_000).contains(&received),
        "in-order bytes at the stack: {received} (retransmissions: {retransmissions})"
    );
}

#[test]
fn same_tower_without_rll_falls_apart_visibly() {
    // Negative control: remove the RLL and 5% loss hits tokens and data
    // alike — Rether retransmits tokens and TCP retransmits segments.
    let mut world = World::new(100);
    let n1 = world.add_host_with(
        "node1",
        "02:00:00:00:00:01".parse().unwrap(),
        "192.168.1.1".parse().unwrap(),
    );
    let n2 = world.add_host_with(
        "node2",
        "02:00:00:00:00:02".parse().unwrap(),
        "192.168.1.2".parse().unwrap(),
    );
    let hub = world.add_hub("bus", 3);
    for &n in &[n1, n2] {
        world.connect(
            n,
            hub,
            LinkConfig::ethernet_10m().errors(ErrorModel::lossy(0.05)),
        );
    }
    let ring = vec![world.host_mac(n1), world.host_mac(n2)];
    let h1 = world.add_hook(
        n1,
        Box::new(RetherNode::new(RetherConfig::new(ring.clone()), ring[0])),
    );
    let _h2 = world.add_hook(
        n2,
        Box::new(RetherNode::new(RetherConfig::new(ring.clone()), ring[1])),
    );
    world.run_for(SimDuration::from_secs(3));
    let rether = world.hook::<RetherNode>(n1, h1).unwrap();
    assert!(
        rether.stats().token_retransmissions > 0,
        "5% loss with no RLL must cost token retransmissions"
    );
}

#[test]
fn engines_span_a_multi_switch_fabric() {
    // node1 — sw1 — sw2 — sw3 — node2: distributed rules must work across
    // a switched fabric, not just a single hop (MAC learning, flooding,
    // and the control plane all crossing three switches).
    let script = r#"
        FILTER_TABLE
        udp_data: (23 1 0x11), (36 2 0x6363)
        END
        NODE_TABLE
        node1 02:00:00:00:00:01 192.168.1.2
        node2 02:00:00:00:00:02 192.168.1.3
        END
        SCENARIO FabricWide
        Sent: (udp_data, node1, node2, SEND)
        Rcvd: (udp_data, node1, node2, RECV)
        (TRUE) >> ENABLE_CNTR(Sent); ENABLE_CNTR(Rcvd);
        ((Sent = 4)) >> DROP(udp_data, node1, node2, SEND);
        ((Rcvd = 19)) >> STOP;
        END
    "#;
    let tables = compile_script(script).unwrap();
    let mut world = World::new(101);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw1 = world.add_switch("sw1", 4);
    let sw2 = world.add_switch("sw2", 4);
    let sw3 = world.add_switch("sw3", 4);
    world.connect(nodes[0], sw1, LinkConfig::fast_ethernet());
    world.connect(sw1, sw2, LinkConfig::fast_ethernet());
    world.connect(sw2, sw3, LinkConfig::fast_ethernet());
    world.connect(sw3, nodes[1], LinkConfig::fast_ethernet());
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    assert!(runner.settle(&mut world), "init crosses three switches");
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(vw_netsim::apps::UdpSink::new(0x6363)),
    );
    let flooder = vw_netsim::apps::UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        2_000_000,
        200,
        20 * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(2));
    assert!(
        matches!(report.stop, StopReason::StopAction(_)),
        "{report:?}"
    );
    assert!(report.passed());
    assert_eq!(report.counter("Sent"), Some(20));
    assert_eq!(
        report.counter("Rcvd"),
        Some(19),
        "exactly the one DROP missing"
    );
}

//! The unattended regression-suite workflow end-to-end (the library-level
//! counterpart of `examples/regression_suite.rs`).

use virtualwire::{EngineConfig, Runner, StopReason, Suite};
use vw_netsim::apps::{UdpFlooder, UdpSink};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;

const SUITE: &str = r#"
    FILTER_TABLE
    udp_data: (23 1 0x11), (36 2 0x6363)
    END
    NODE_TABLE
    node1 02:00:00:00:00:01 192.168.1.2
    node2 02:00:00:00:00:02 192.168.1.3
    END

    SCENARIO Green_Flow 500msec
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 15)) >> STOP;
    END

    SCENARIO Green_With_Fault 500msec
    Sent: (udp_data, node1, node2, SEND)
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Sent); ENABLE_CNTR(Rcvd);
    ((Sent = 3)) >> DROP(udp_data, node1, node2, SEND);
    ((Rcvd = 14)) >> STOP;
    END

    SCENARIO Red_By_Design 300msec
    Rcvd: (udp_data, node1, node2, RECV)
    (TRUE) >> ENABLE_CNTR(Rcvd);
    ((Rcvd = 5)) >> FLAG_ERR "intentional"; STOP;
    END
"#;

fn setup(tables: &vw_fsl::TableSet) -> (World, Runner) {
    let mut world = World::new(0xBEEF);
    let nodes = Runner::create_hosts(&mut world, tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables.clone(), EngineConfig::default());
    runner.settle(&mut world);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(UdpSink::new(0x6363)),
    );
    let flooder = UdpFlooder::new(
        world.host_mac(nodes[1]),
        world.host_ip(nodes[1]),
        0x6363,
        9000,
        2_000_000,
        200,
        15 * 200,
    );
    world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(flooder),
    );
    (world, runner)
}

#[test]
fn suite_runs_all_scenarios_and_aggregates() {
    let suite = Suite::from_source(SUITE).unwrap();
    assert_eq!(suite.len(), 3);
    let result = suite.run(SimDuration::from_secs(2), setup);
    assert_eq!(result.reports.len(), 3);
    assert_eq!(result.passed_count(), 2);
    assert!(!result.passed(), "the red test fails the whole suite");

    // Per-scenario outcomes.
    assert!(result.reports[0].passed());
    assert!(matches!(result.reports[0].stop, StopReason::StopAction(_)));
    assert!(result.reports[1].passed());
    assert_eq!(result.reports[1].counter("Sent"), Some(15));
    assert!(!result.reports[2].passed());
    assert_eq!(result.reports[2].errors.len(), 1);
    assert_eq!(result.reports[2].errors[0].message, "intentional");

    // The summary names every scenario and the verdict.
    let summary = result.render();
    assert!(summary.contains("Green_Flow"));
    assert!(summary.contains("Red_By_Design"));
    assert!(summary.contains("2/3 scenarios passed"));
}

#[test]
fn suite_reports_are_independent_across_scenarios() {
    // Each scenario gets a fresh world: counters never bleed over.
    let suite = Suite::from_source(SUITE).unwrap();
    let result = suite.run(SimDuration::from_secs(2), setup);
    // Scenario 1 has no Sent counter; scenario 2 does.
    assert_eq!(result.reports[0].counter("Sent"), None);
    assert_eq!(result.reports[1].counter("Sent"), Some(15));
    // The red scenario stopped at 5, not at some accumulated count.
    assert_eq!(result.reports[2].counter("Rcvd"), Some(5));
}

//! Section 6.2: testing Rether's token-recovery implementation with the
//! (adapted) Figure 6 script — the paper's demonstration of *distributed*
//! rule execution: the counter lives on node2, the `FAIL` action executes
//! on node3, and the `STOP` condition combines terms evaluated on three
//! different nodes.

use virtualwire::{compile_script, EngineConfig, Runner, StopReason};
use vw_netsim::{Binding, DeviceId, HookId, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_rether::{RetherConfig, RetherNode};
use vw_tcpstack::{Endpoint, SocketHandle, TcpConfig, TcpStack};

const SCRIPT: &str = include_str!("../scripts/rether_failover.fsl");

struct Testbed {
    world: World,
    runner: Runner,
    nodes: Vec<DeviceId>,
    rether_hooks: Vec<HookId>,
    client_id: vw_netsim::ProtocolId,
    handle: SocketHandle,
}

/// Four Rether nodes on a shared medium; node1 ⇄ node4 run a real-time
/// TCP session. `token_send_limit` configures the Rether implementation
/// under test (3 = correct; more = a broken failure detector).
fn testbed(seed: u64, token_send_limit: u32) -> Testbed {
    let tables = compile_script(SCRIPT).unwrap_or_else(|e| panic!("{e}"));
    let mut world = World::new(seed);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let hub = world.add_hub("bus", 5);
    for &n in &nodes {
        world.connect(n, hub, LinkConfig::ethernet_10m());
    }
    // Rether is installed first (closest to the stack); the engines that
    // Runner::install adds afterwards sit between Rether and the wire —
    // so injected token faults are exactly what kernel Rether would have
    // seen coming off the driver.
    let ring: Vec<_> = tables.nodes.iter().map(|n| n.mac).collect();
    let mut rether_hooks = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        let cfg = RetherConfig {
            ring: ring.clone(),
            token_send_limit,
            ..RetherConfig::new(ring.clone())
        };
        let mut rether = RetherNode::new(cfg, ring[i]);
        if i == 0 || i == 3 {
            rether.reserve_rt(32 * 1024); // the real-time participants
        }
        rether_hooks.push(world.add_hook(node, Box::new(rether)));
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    // The real-time TCP session: node1:0x6000 → node4:0x4000, pumped at
    // a steady rate.
    let tcp_cfg = TcpConfig::default();
    let mut server = TcpStack::new(world.host_mac(nodes[3]), world.host_ip(nodes[3]));
    server.listen(0x4000, tcp_cfg);
    world.add_protocol(
        nodes[3],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );
    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let handle = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[3]),
            ip: world.host_ip(nodes[3]),
            port: 0x4000,
        },
    );
    client.attach_source(handle, 2_000_000, 10_000_000);
    let client_id = world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    Testbed {
        world,
        runner,
        nodes,
        rether_hooks,
        client_id,
        handle,
    }
}

#[test]
fn single_node_failure_is_detected_and_the_ring_recovers() {
    let mut tb = testbed(1, 3);
    let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(60));

    assert!(
        matches!(report.stop, StopReason::StopAction(_)),
        "recovery must complete and fire STOP: {report:?}"
    );
    assert!(report.passed(), "{}", report.render());

    // The paper's key check: exactly 3 token transmissions from node2 to
    // the crashed node3 — no more.
    assert_eq!(report.counter("TokensFrom2"), Some(3));

    // node3 really was crashed by the remote FAIL action.
    assert!(tb
        .runner
        .engine(&tb.world, "node3")
        .unwrap()
        .is_blackholed());

    // Survivors reconstructed the ring without node3.
    for i in [0usize, 1, 3] {
        let rether = tb
            .world
            .hook::<RetherNode>(tb.nodes[i], tb.rether_hooks[i])
            .unwrap();
        assert_eq!(
            rether.ring().len(),
            3,
            "node{} must see a 3-member ring",
            i + 1
        );
    }
    // node2 performed exactly one reconstruction.
    let node2 = tb
        .world
        .hook::<RetherNode>(tb.nodes[1], tb.rether_hooks[1])
        .unwrap();
    assert_eq!(node2.stats().reconstructions, 1);
    assert_eq!(
        node2.stats().token_retransmissions,
        2,
        "3 sends = 1 + 2 retries"
    );

    // More than 100 real-time TCP data packets were delivered before the
    // fault was even armed.
    assert!(report.counter("CNT_DATA").unwrap() > 100);

    // The real-time transport survived: the client connection is healthy
    // and made progress.
    let client = tb
        .world
        .protocol::<TcpStack>(tb.nodes[0], tb.client_id)
        .unwrap();
    let sock = client.socket(tb.handle);
    assert_eq!(sock.state(), vw_tcpstack::TcpState::Established);
    assert!(sock.stats().bytes_acked > 100_000);
}

#[test]
fn token_keeps_flowing_after_recovery() {
    let mut tb = testbed(2, 3);
    let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(60));
    assert!(report.passed(), "{}", report.render());

    // Run on past the STOP: the ring must keep rotating among survivors
    // and TCP must keep moving. (The STOP froze the world; use a fresh
    // slice by clearing... the world is stopped, so instead verify from
    // collected state: every survivor kept receiving tokens after the
    // reconstruction.)
    let recv_counts: Vec<u64> = [0usize, 1, 3]
        .iter()
        .map(|&i| {
            tb.world
                .hook::<RetherNode>(tb.nodes[i], tb.rether_hooks[i])
                .unwrap()
                .stats()
                .tokens_received
        })
        .collect();
    // The ring rotated long enough before the fault that every survivor
    // holds a healthy token count, and node2's post-recovery pass to
    // node4 (TokensTo4 = 1) plus node4's to node1 (TokensTo1 = 1) are
    // certified by the STOP condition having fired.
    assert!(recv_counts.iter().all(|&c| c > 10), "{recv_counts:?}");
}

#[test]
fn broken_failure_detector_is_flagged() {
    // A Rether build that retransmits the token 6 times before declaring
    // the successor dead violates the protocol spec the script encodes.
    let mut tb = testbed(3, 6);
    let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(60));
    assert!(
        !report.passed(),
        "a 6-retransmission Rether must trip the TokensFrom2 > 3 rule:\n{}",
        report.render()
    );
    assert!(report
        .errors
        .iter()
        .any(|e| e.message.contains("retransmitted more than 3 times")));
    // The flag lives at node2, where TokensFrom2 is counted.
    assert_eq!(report.errors[0].node_name, "node2");
    assert_eq!(report.counter("TokensFrom2"), Some(6));
}

#[test]
fn scenario_is_deterministic() {
    let run = |seed| {
        let mut tb = testbed(seed, 3);
        let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(60));
        (
            report.counter("CNT_DATA"),
            report.counter("TokensFrom2"),
            report.errors.len(),
            format!("{:?}", report.stop),
        )
    };
    assert_eq!(run(9), run(9));
}

//! Section 6.1: testing the TCP slow-start → congestion-avoidance
//! transition with the (adapted) Figure 5 script.
//!
//! The script drops one SYNACK during connection establishment, which
//! forces a SYN retransmission timeout and leaves the sender with
//! `ssthresh = 2` segments and `cwnd = 1`. The analysis rules then mirror
//! the expected window evolution in counters driven purely by on-the-wire
//! events and flag an error if the sender ever transmits beyond its
//! window — i.e. if it failed to switch to congestion avoidance.
//!
//! Where the paper tests Linux 2.4.17, we test `vw-tcpstack` — and, unlike
//! the paper, we also run the scenario against a deliberately broken stack
//! to show the Fault Analysis Engine catches the bug.

use virtualwire::{compile_script, EngineConfig, Runner, StopReason};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_tcpstack::{CcPhase, Endpoint, SocketHandle, TcpConfig, TcpStack};

const SCRIPT: &str = include_str!("../scripts/tcp_ss_ca.fsl");

struct Testbed {
    world: World,
    runner: Runner,
    client_node: vw_netsim::DeviceId,
    client_id: vw_netsim::ProtocolId,
    handle: SocketHandle,
}

/// Builds the two-node testbed of Section 6.1: a TCP sender on node1
/// (port 0x6000) talking to a receiver on node2 (port 0x4000), with
/// VirtualWire engines on both nodes.
fn testbed(seed: u64, buggy: bool) -> Testbed {
    let tables = compile_script(SCRIPT).unwrap_or_else(|e| panic!("{e}"));
    let mut world = World::new(seed);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    let tcp_cfg = TcpConfig {
        bug_never_enter_ca: buggy,
        ..TcpConfig::default()
    };
    let mut server = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
    server.listen(0x4000, tcp_cfg);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );

    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let handle = client.connect(
        tcp_cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[1]),
            ip: world.host_ip(nodes[1]),
            port: 0x4000,
        },
    );
    client.send(handle, &vec![0x42u8; 80_000]); // 80 segments of work
    let client_id = world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );

    Testbed {
        world,
        runner,
        client_node: nodes[0],
        client_id,
        handle,
    }
}

#[test]
fn correct_tcp_passes_the_figure5_scenario() {
    let mut tb = testbed(1, false);
    let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(10));

    assert!(
        matches!(report.stop, StopReason::StopAction(_)),
        "the scripted STOP must end the run: {report:?}"
    );
    assert!(
        report.passed(),
        "a conformant TCP must not trip FLAG_ERROR:\n{}",
        report.render()
    );

    // The fault really was injected: exactly one SYNACK consumed.
    let node1 = tb.runner.engine(&tb.world, "node1").unwrap();
    assert_eq!(node1.stats().drops, 1, "exactly one SYNACK dropped");
    // Original (dropped) + the server's own RTO retransmission and/or its
    // response to the retransmitted SYN: 2 or 3 SYNACKs total.
    let synacks = report.counter("SYNACK").unwrap();
    assert!((2..=3).contains(&synacks), "SYNACK count {synacks}");

    // The analysis mirror crossed ssthresh: congestion avoidance reached.
    let cwnd = report.counter("CWND").unwrap();
    assert!(
        cwnd > 2,
        "script-tracked CWND {cwnd} must exceed SSTHRESH=2 (congestion avoidance)"
    );
    assert_eq!(report.counter("SSTHRESH"), Some(2));

    // Cross-check against the implementation's internals (which the
    // script, by design, never looked at).
    let client = tb
        .world
        .protocol::<TcpStack>(tb.client_node, tb.client_id)
        .unwrap();
    let socket = client.socket(tb.handle);
    assert_eq!(socket.ssthresh(), 2000, "2 MSS after the SYN timeout");
    assert_eq!(socket.cc_phase(), CcPhase::CongestionAvoidance);
    assert_eq!(socket.stats().timeouts, 1, "exactly the handshake timeout");

    // The script's CWND mirror tracks the real window (in MSS units).
    let real_cwnd_mss = i64::from(socket.cwnd() / 1000);
    assert!(
        (cwnd - real_cwnd_mss).abs() <= 1,
        "script CWND {cwnd} vs implementation {real_cwnd_mss} MSS"
    );
}

#[test]
fn buggy_tcp_is_caught_by_the_analysis_script() {
    let mut tb = testbed(2, true);
    let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(10));

    assert!(
        !report.passed(),
        "a TCP that never enters congestion avoidance must be flagged:\n{}",
        report.render()
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.message.contains("beyond its congestion window")),
        "the CanTx < 0 rule should be the one that fires: {:?}",
        report.errors
    );
    // The error is flagged at node1, where the CanTx ledger lives.
    assert_eq!(report.errors[0].node_name, "node1");
}

#[test]
fn without_the_fault_the_scenario_script_detects_the_mismatch() {
    // Control experiment: remove the DROP rule. The analysis script
    // hard-codes the window evolution that the *fault* produces
    // (ssthresh = 2); without the fault the real TCP keeps
    // ssthresh = 64 KB and stays in slow start, transmitting 2 segments
    // per ACK while the script's mirror — already in congestion-avoidance
    // accounting — credits only 1. The FAE flags the divergence: the
    // script verifies behaviour *under its scenario*, exactly as the
    // paper intends (each fault scenario carries its own expected
    // response).
    let script = SCRIPT.replace(
        "((SYNACK > 0) && (SYNACK < 2)) >>
    DROP TCP_synack, node2, node1, RECV;",
        "",
    );
    let tables = compile_script(&script).unwrap();
    let mut world = World::new(3);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);
    let cfg = TcpConfig::default();
    let mut server = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
    server.listen(0x4000, cfg);
    world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(server),
    );
    let mut client = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    let h = client.connect(
        cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[1]),
            ip: world.host_ip(nodes[1]),
            port: 0x4000,
        },
    );
    client.send(h, &vec![1u8; 80_000]);
    let cid = world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(client),
    );
    let report = runner.run(&mut world, SimDuration::from_secs(10));
    assert_eq!(
        report.counter("SYNACK"),
        Some(1),
        "no retransmission needed"
    );
    let client = world.protocol::<TcpStack>(nodes[0], cid).unwrap();
    assert_eq!(client.socket(h).stats().timeouts, 0);
    assert_eq!(client.socket(h).cc_phase(), CcPhase::SlowStart);
    assert!(
        !report.passed(),
        "the scenario script must notice TCP is not following the \
         faulted-scenario window evolution:\n{}",
        report.render()
    );
}

#[test]
fn scenario_is_deterministic() {
    let run = |seed| {
        let mut tb = testbed(seed, false);
        let report = tb.runner.run(&mut tb.world, SimDuration::from_secs(10));
        (
            report.counter("CWND"),
            report.counter("CanTx"),
            report.counter("ACK_TOTAL"),
            report.errors.len(),
        )
    };
    assert_eq!(run(7), run(7));
}

//! Cross-crate stress: bidirectional TCP through engines, and delivery
//! over randomized switch-tree topologies (property-based).

use proptest::prelude::*;
use virtualwire::{compile_script, EngineConfig, Runner};
use vw_netsim::apps::{UdpEcho, UdpPinger};
use vw_netsim::{Binding, LinkConfig, SimDuration, World};
use vw_packet::EtherType;
use vw_tcpstack::{Endpoint, SocketHandle, TcpConfig, TcpStack};

#[test]
fn bidirectional_tcp_through_armed_engines() {
    // Two simultaneous connections in opposite directions, both monitored
    // by the same engines, each with its own fault: the engines must keep
    // the flows (and their counters) apart.
    let script = r#"
        FILTER_TABLE
        fwd_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
        rev_data: (34 2 0x5000), (36 2 0x3000), (47 1 0x10 0x10)
        END
        NODE_TABLE
        node1 02:00:00:00:00:01 192.168.1.1
        node2 02:00:00:00:00:02 192.168.1.2
        END
        SCENARIO TwoFlows
        Fwd: (fwd_data, node1, node2, SEND)
        Rev: (rev_data, node2, node1, SEND)
        (TRUE) >> ENABLE_CNTR(Fwd); ENABLE_CNTR(Rev);
        ((Fwd = 5)) >> DROP(fwd_data, node1, node2, SEND);
        ((Rev = 7)) >> DROP(rev_data, node2, node1, SEND);
        END
    "#;
    let tables = compile_script(script).unwrap();
    let mut world = World::new(1);
    let nodes = Runner::create_hosts(&mut world, &tables);
    let sw = world.add_switch("sw0", 4);
    for &n in &nodes {
        world.connect(n, sw, LinkConfig::fast_ethernet());
    }
    let runner = Runner::install(&mut world, tables, EngineConfig::default());
    runner.settle(&mut world);

    let cfg = TcpConfig::default();
    // node1: server on 0x3000, client from 0x6000 → node2:0x4000.
    let mut stack1 = TcpStack::new(world.host_mac(nodes[0]), world.host_ip(nodes[0]));
    stack1.listen(0x3000, cfg);
    let fwd = stack1.connect(
        cfg,
        0x6000,
        Endpoint {
            mac: world.host_mac(nodes[1]),
            ip: world.host_ip(nodes[1]),
            port: 0x4000,
        },
    );
    let fwd_data: Vec<u8> = (0..40_000u32).map(|i| i as u8).collect();
    stack1.send(fwd, &fwd_data);
    let id1 = world.add_protocol(
        nodes[0],
        Binding::EtherType(EtherType::IPV4),
        Box::new(stack1),
    );

    // node2: server on 0x4000, client from 0x5000 → node1:0x3000.
    let mut stack2 = TcpStack::new(world.host_mac(nodes[1]), world.host_ip(nodes[1]));
    stack2.listen(0x4000, cfg);
    let rev = stack2.connect(
        TcpConfig { iss: 77_000, ..cfg },
        0x5000,
        Endpoint {
            mac: world.host_mac(nodes[0]),
            ip: world.host_ip(nodes[0]),
            port: 0x3000,
        },
    );
    let rev_data: Vec<u8> = (0..40_000u32).map(|i| (i * 3) as u8).collect();
    stack2.send(rev, &rev_data);
    let id2 = world.add_protocol(
        nodes[1],
        Binding::EtherType(EtherType::IPV4),
        Box::new(stack2),
    );

    let report = runner.run(&mut world, SimDuration::from_secs(10));
    assert!(report.passed());

    // Both directions delivered everything despite one injected drop each
    // (TCP retransmits through).
    let stack2_ref = world.protocol_mut::<TcpStack>(nodes[1], id2).unwrap();
    let fwd_rx = stack2_ref
        .socket_mut(SocketHandle::from_index(1)) // accepted socket
        .take_received();
    assert_eq!(fwd_rx, fwd_data);
    let stack1_ref = world.protocol_mut::<TcpStack>(nodes[0], id1).unwrap();
    let rev_rx = stack1_ref
        .socket_mut(SocketHandle::from_index(1))
        .take_received();
    assert_eq!(rev_rx, rev_data);

    // Each engine saw its own fault exactly once.
    assert_eq!(runner.engine(&world, "node1").unwrap().stats().drops, 1);
    assert_eq!(runner.engine(&world, "node2").unwrap().stats().drops, 1);
    // And the flows retransmitted across the scripted drops.
    let s1 = world.protocol::<TcpStack>(nodes[0], id1).unwrap();
    assert!(s1.socket(fwd).stats().retransmissions >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Random switch trees: attach hosts to a random tree of switches and
    /// verify a UDP ping completes between every pair of leaf hosts.
    #[test]
    fn ping_works_across_random_switch_trees(
        seed in 0u64..10_000,
        n_switches in 1usize..5,
        n_hosts in 2usize..6,
        parents in proptest::collection::vec(any::<u32>(), 8),
    ) {
        let mut world = World::new(seed);
        let switches: Vec<_> = (0..n_switches)
            .map(|i| world.add_switch(&format!("sw{i}"), 16))
            .collect();
        // Tree: switch i>0 connects to a random earlier switch.
        for i in 1..n_switches {
            let parent = switches[parents[i % parents.len()] as usize % i];
            world.connect(switches[i], parent, LinkConfig::fast_ethernet());
        }
        let hosts: Vec<_> = (0..n_hosts)
            .map(|i| {
                let h = world.add_host(&format!("h{i}"));
                let sw = switches[parents[(i + 3) % parents.len()] as usize % n_switches];
                world.connect(h, sw, LinkConfig::fast_ethernet());
                h
            })
            .collect();
        // Echo responders everywhere; one pinger per (ordered) pair.
        for &h in &hosts {
            world.add_protocol(h, Binding::EtherType(EtherType::IPV4), Box::new(UdpEcho::new(7)));
        }
        let mut pingers = Vec::new();
        for (i, &src) in hosts.iter().enumerate() {
            let dst = hosts[(i + 1) % n_hosts];
            let pinger = UdpPinger::new(
                world.host_mac(dst),
                world.host_ip(dst),
                7,
                (9000 + i) as u16,
                SimDuration::from_millis(1),
                32,
                3,
            );
            let id = world.add_protocol(src, Binding::EtherType(EtherType::IPV4), Box::new(pinger));
            pingers.push((src, id));
        }
        world.run_for(SimDuration::from_millis(100));
        for (host, id) in pingers {
            let pinger = world.protocol::<UdpPinger>(host, id).unwrap();
            prop_assert_eq!(pinger.rtts().len(), 3, "all probes answered");
            prop_assert_eq!(pinger.lost(), 0);
        }
    }
}

//! Offline stand-in for the parts of `criterion` 0.8 this workspace uses.
//!
//! The build container has no registry access, so this crate provides a
//! compatible wall-clock micro-benchmark runner: `Criterion` with
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! No statistical analysis, plots, or baseline comparison: each benchmark
//! warms up, then collects `sample_size` timed samples and prints the
//! median, minimum, and mean time per iteration.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Hook called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, |b| f(b));
        self
    }

    /// Ends the group (a no-op here; analysis is per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function label plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the iteration count chosen by the runner.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Runs warm-up, picks an iteration count, collects samples, prints stats.
fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, mut f: F) {
    // Warm-up: also discovers roughly how long one iteration takes.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut batch = 1u64;
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += batch;
        batch = (batch * 2).min(1 << 20);
    }
    let per_iter_est = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

    // Size each sample so all samples fit the measurement budget.
    let budget_per_sample =
        config.measurement_time.as_nanos() / config.sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter_est.max(1)).clamp(1, 1 << 32) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{id:<48} median {} (min {}, mean {}, {} samples x {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean),
        samples_ns.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn, ...)` or
/// the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

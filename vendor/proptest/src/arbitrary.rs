//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy covering the whole domain.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (full domain for primitives).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<fn() -> T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.next_u64() as $t)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> Result<bool, TestCaseError> {
        Ok(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Arbitrary strings: half the characters are printable ASCII and
/// whitespace (newlines included, to exercise line-oriented parsers),
/// the other half arbitrary Unicode scalars.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyString;

impl Strategy for AnyString {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, TestCaseError> {
        let len = rng.below(40) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            if rng.below(2) == 0 {
                let c = match rng.below(36) {
                    0 => '\n',
                    1 => '\t',
                    2 => ' ',
                    n => (b'!' + (n - 3) as u8 * 3 % 94) as char,
                };
                out.push(c);
            } else {
                let c = std::iter::repeat_with(|| rng.next_u64() as u32 % 0x11_0000)
                    .find_map(char::from_u32)
                    .unwrap_or('\u{fffd}');
                out.push(c);
            }
        }
        Ok(out)
    }
}

impl Arbitrary for String {
    type Strategy = AnyString;

    fn arbitrary() -> Self::Strategy {
        AnyString
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
        Ok(rng.unit_f64())
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Result<f32, TestCaseError> {
        Ok(rng.unit_f64() as f32)
    }
}

impl Arbitrary for f32 {
    type Strategy = AnyPrimitive<f32>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

//! `collection::vec` — variable- and fixed-length vector strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};

/// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Draws a length from the size specification.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty size range");
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as usize
    }
}

/// A strategy producing `Vec`s of `element` values with a size drawn
/// from `size` for each case.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
        let len = self.size.sample_len(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Ok(out)
    }
}

//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build container has no registry access, so this crate reimplements
//! a compatible subset: the `proptest!` / `prop_compose!` macros, the
//! strategy combinators the tests call (`any`, integer/float ranges,
//! `collection::vec`, regex-lite string literals, `prop_filter`,
//! `prop_map`, `prop_flat_map`, `Just`), and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (they are `Debug`-formatted before the body runs) instead of a
//!   minimized counterexample.
//! * **Deterministic seeding.** Cases derive from a hash of the test's
//!   `file!()`/name plus the case index, so failures reproduce exactly
//!   and `proptest-regressions` files are not consulted.
//! * **Regex strategies** support the subset the workspace uses: literal
//!   characters, `[a-z0-9_]`-style classes (with ranges and negation-free
//!   members), and `{m,n}` / `{n}` / `?` / `*` / `+` repetition.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` test expects in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    /// The `prop::` module path the real prelude provides.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy, string};
    }
}

/// Uniform choice between strategies producing the same value type:
/// `prop_oneof![Just(A), Just(B), 0..10u8.prop_map(C)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Runs each `fn name(arg in strategy, ...) { body }` item as a `#[test]`
/// over `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                &__config,
                concat!(file!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng)?;)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                Ok(())
                            },
                        ),
                    )
                    .unwrap_or_else(|payload| {
                        Err($crate::test_runner::TestCaseError::fail(
                            $crate::test_runner::panic_message(payload),
                        ))
                    });
                    Ok((__inputs, __outcome))
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// `prop_compose! { fn name(params)(args in strategies) -> T { body } }`
/// defines `fn name(params) -> impl Strategy<Value = T>`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident
        ($($param:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng)?;)+
                    Ok($body)
                },
            )
        }
    };
}

/// Fails the current case (with formatted context) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), __lhs, __rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __lhs, __rhs
        );
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs != *__rhs,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), __lhs
        );
    }};
}

/// Rejects (skips) the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

//! `option::of` — strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};

/// Produces `None` about a quarter of the time, `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Option<S::Value>, TestCaseError> {
        if rng.below(4) == 0 {
            Ok(None)
        } else {
            Ok(Some(self.inner.generate(rng)?))
        }
    }
}

//! `sample::Index` — a length-agnostic collection index.

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};

/// An index into a collection of as-yet-unknown size: generate one with
/// `any::<Index>()`, then project it with [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Maps the index onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero, like the real proptest type.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Full-domain strategy for [`Index`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyIndex;

impl Strategy for AnyIndex {
    type Value = Index;

    fn generate(&self, rng: &mut TestRng) -> Result<Index, TestCaseError> {
        Ok(Index(rng.next_u64()))
    }
}

impl Arbitrary for Index {
    type Strategy = AnyIndex;

    fn arbitrary() -> Self::Strategy {
        AnyIndex
    }
}

//! The [`Strategy`] trait and the combinators this workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::{TestCaseError, TestRng};

/// How many times a filter may reject before the case is abandoned.
const FILTER_RETRIES: u32 = 256;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// samples one concrete value (or rejects, for filtered strategies).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value. `Err(Reject)` skips the case.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Keeps only values satisfying `pred`, retrying a bounded number of
    /// times before rejecting the case.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Transforms generated values with `map`.
    fn prop_map<F, T>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, map }
    }

    /// Feeds generated values into a second, value-dependent strategy.
    fn prop_flat_map<F, S>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, flat }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        for _ in 0..FILTER_RETRIES {
            let value = self.inner.generate(rng)?;
            if (self.pred)(&value) {
                return Ok(value);
            }
        }
        Err(TestCaseError::reject(self.reason))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok((self.map)(self.inner.generate(rng)?))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    flat: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, TestCaseError> {
        (self.flat)(self.inner.generate(rng)?).generate(rng)
    }
}

/// Uniform choice between same-valued strategies (see `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        let arm = rng.below(self.0.len() as u64) as usize;
        self.0[arm].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy built from a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F, T> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<F, T> FnStrategy<F, T>
where
    F: Fn(&mut TestRng) -> Result<T, TestCaseError>,
{
    /// Wraps a sampling closure.
    pub fn new(f: F) -> Self {
        FnStrategy {
            f,
            _marker: PhantomData,
        }
    }
}

impl<F, T> Strategy for FnStrategy<F, T>
where
    F: Fn(&mut TestRng) -> Result<T, TestCaseError>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        (self.f)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return Ok(rng.next_u64() as $t);
                }
                Ok((start as i128 + rng.below(span + 1) as i128) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
        assert!(self.start < self.end, "cannot sample empty range");
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Result<f32, TestCaseError> {
        assert!(self.start < self.end, "cannot sample empty range");
        Ok(self.start + (rng.unit_f64() as f32) * (self.end - self.start))
    }
}

/// String literals act as regex-lite strategies (`"[a-z]{1,8}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, TestCaseError> {
        crate::string::sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, TestCaseError> {
        crate::string::sample_pattern(self, rng)
    }
}

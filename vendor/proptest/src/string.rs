//! Regex-lite string sampling for string-literal strategies.
//!
//! Supports the subset this workspace's tests use: literal characters,
//! `\`-escapes, character classes like `[A-Za-z0-9_]` (members and
//! `a-z` ranges), and repetition via `{n}`, `{m,n}`, `?`, `*`, `+`
//! (unbounded repeats are capped at 16).

use crate::test_runner::{TestCaseError, TestRng};

/// Cap for `*` / `+` so samples stay small.
const UNBOUNDED_CAP: u32 = 16;

#[derive(Debug, Clone)]
enum Atom {
    /// A single literal character.
    Literal(char),
    /// A character class: the flattened set of member characters.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Samples one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> Result<String, TestCaseError> {
    let pieces = parse(pattern)
        .map_err(|e| TestCaseError::fail(format!("bad string pattern {pattern:?}: {e}")))?;
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
            }
        }
    }
    Ok(out)
}

fn parse(pattern: &str) -> Result<Vec<Piece>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1)?;
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                let c = *chars.get(i + 1).ok_or("dangling escape")?;
                i += 2;
                Atom::Literal(unescape(c))
            }
            c @ ('?' | '*' | '+' | '{' | '}' | ']') => {
                return Err(format!("unexpected `{c}`"));
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_repeat(&chars, i)?;
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    Ok(pieces)
}

/// Parses the body of a `[...]` class starting just after `[`;
/// returns the member set and the index just past `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), String> {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(*chars.get(i).ok_or("dangling escape in class")?)
        } else {
            chars[i]
        };
        // `a-z` range (a trailing `-` is a literal member).
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            if (c as u32) > (hi as u32) {
                return Err(format!("inverted range `{c}-{hi}`"));
            }
            for code in (c as u32)..=(hi as u32) {
                set.push(char::from_u32(code).ok_or("bad range codepoint")?);
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    if i >= chars.len() {
        return Err("unterminated class".into());
    }
    if set.is_empty() {
        return Err("empty class".into());
    }
    Ok((set, i + 1))
}

/// Parses an optional repetition operator at `i`; returns `(min, max, next)`.
fn parse_repeat(chars: &[char], i: usize) -> Result<(u32, u32, usize), String> {
    match chars.get(i) {
        Some('?') => Ok((0, 1, i + 1)),
        Some('*') => Ok((0, UNBOUNDED_CAP, i + 1)),
        Some('+') => Ok((1, UNBOUNDED_CAP, i + 1)),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated `{`")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().map_err(|_| "bad repeat min")?,
                    hi.parse().map_err(|_| "bad repeat max")?,
                ),
                None => {
                    let n: u32 = body.parse().map_err(|_| "bad repeat count")?;
                    (n, n)
                }
            };
            if min > max {
                return Err("inverted repeat bounds".into());
            }
            Ok((min, max, close + 1))
        }
        _ => Ok((1, 1, i)),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use crate::test_runner::TestRng;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample_pattern("[A-Za-z][A-Za-z0-9_]{0,8}", &mut rng).unwrap();
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut it = s.chars();
            assert!(it.next().unwrap().is_ascii_alphabetic());
            assert!(it.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_pattern() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = sample_pattern("[ -~]{0,80}", &mut rng).unwrap();
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_repeats() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = sample_pattern("ab{3}c?", &mut rng).unwrap();
        assert!(s.starts_with("abbb"));
        assert!(s == "abbb" || s == "abbbc");
    }
}

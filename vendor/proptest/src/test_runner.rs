//! Case execution: deterministic RNG, config, and the case loop.

use std::any::Any;

/// Deterministic xoshiro256++ generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Maximum rejected cases (filters/assumptions) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs were rejected (`prop_assume!` / `prop_filter`).
    Reject(String),
    /// The case failed an assertion or panicked.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Extracts a readable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "test case panicked".to_string()
    }
}

/// Stable 64-bit FNV-1a hash of the test identity, used as the seed base.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01B3);
    }
    hash
}

/// One generated case: `Ok((inputs_debug, body_outcome))`, or `Err` if
/// generation itself rejected the inputs.
type CaseResult = Result<(String, Result<(), TestCaseError>), TestCaseError>;

/// Drives `config.cases` deterministic cases through `case`, panicking
/// with the failing inputs on the first failure (no shrinking).
pub fn run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        if rejected > config.max_global_rejects {
            panic!(
                "proptest [{name}]: too many rejected inputs \
                 ({rejected} rejects for {passed}/{} passes)",
                config.cases
            );
        }
        let mut rng = TestRng::seed_from_u64(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        stream += 1;
        match case(&mut rng) {
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest [{name}] failed during input generation: {msg}"
            ),
            Ok((_, Ok(()))) => passed += 1,
            Ok((_, Err(TestCaseError::Reject(_)))) => rejected += 1,
            Ok((inputs, Err(TestCaseError::Fail(msg)))) => panic!(
                "proptest [{name}] failed (case {}, seed base {base:#x}):\n\
                 {msg}\n\
                 inputs: {inputs}\n\
                 (offline proptest stand-in: inputs are exact, not shrunk)",
                passed + rejected
            ),
        }
    }
}

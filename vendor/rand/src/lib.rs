//! Offline stand-in for the parts of `rand` 0.9 this workspace uses.
//!
//! The build container has no registry access, so this crate provides a
//! deterministic xoshiro256++ generator behind the familiar `Rng` /
//! `SeedableRng` / `rngs::StdRng` names. The API subset is exactly what
//! the simulator and tests call: `random::<f64|bool|uN>()` and
//! `random_range(a..b)` / `random_range(a..=b)` over primitive integers.
//!
//! Determinism matters more than statistical perfection here: the
//! simulator seeds every `World` explicitly so runs are reproducible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a supported primitive type uniformly.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s behavior.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding, mirroring `rand::SeedableRng` (only `seed_from_u64` is used).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable with [`Rng::random`].
pub trait Random {
    /// Samples one value uniformly from the type's full domain
    /// (for `f64`: the unit interval `[0, 1)`).
    fn random<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges samplable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, bound)` via Lemire-style rejection.
fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(0..100);
            assert!(v < 100);
            let w: u8 = rng.random_range(1..=3);
            assert!((1..=3).contains(&w));
            let x: i64 = rng.random_range(-50..50);
            assert!((-50..50).contains(&x));
            let f: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            if f < 0.1 {
                lo = true;
            }
            if f > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }
}

//! Offline stand-in for `serde`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never actually serializes through serde — the control-plane codec
//! in `virtualwire::wire` is hand-rolled. The build container has no
//! registry access, so this crate provides just enough surface for those
//! annotations to compile: marker traits and no-op derives.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Never invoked.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. Never invoked.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`. Never invoked.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

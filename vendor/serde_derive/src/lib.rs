//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations — nothing serializes through serde (the
//! control plane has a hand-rolled codec in `virtualwire::wire`). The
//! build container has no registry access, so these derives expand to
//! nothing rather than pulling in the real implementation.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
